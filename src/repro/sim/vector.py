"""Vectorized batch simulation: many stimulus vectors per pass on NumPy.

The scalar :class:`repro.sim.simulator.Simulator` interprets the
expression DAG node by node for one trial at a time; that interpreter is
the bottleneck of every differential test, of counterexample shrinking
and of the service layer's regression traffic.  This module evaluates a
:class:`repro.design.Design` over a *batch* of stimulus vectors
simultaneously (in the style of RTLDesignSherpa's NumPy ``MemoryModel``
golden reference): every expression node becomes one ``uint64`` array
with one lane per trial, the design is compiled **once** into a
topologically-ordered evaluation plan of word-level array ops with
explicit width masking, and the per-cycle hot loop is a flat sweep over
that plan — no expression-tree recursion, no per-node dict dispatch.

Memory contents are dense ``(batch, 2**AW)`` arrays; write ports apply
enable-masked word updates in port order, so the highest port index wins
exactly as in the scalar simulator and the EMM priority chain.  Read
ports gather per-lane words and force 0 when the read enable is low,
matching the EMM discipline.

NumPy is an *optional* dependency: :func:`have_numpy` reports
availability and every consumer (oracle layer, shrinker, fuzz farm)
falls back to the scalar simulator when it is missing.
"""

from __future__ import annotations

import weakref
from typing import Mapping, Optional, Sequence

try:  # optional dependency; the scalar simulator is the fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None

from repro.design.netlist import Design, Expr
from repro.sim.trace import Trace

#: Word widths the uint64 lanes can hold.
MAX_WIDTH = 64


def have_numpy() -> bool:
    """True when the vectorized path is available."""
    return np is not None


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "VectorSimulator requires numpy; install numpy or use the "
            "scalar repro.sim.Simulator")


def _lane_int(arr, lane: int) -> int:
    """One lane of a (possibly 0-d broadcast) value array, as python int."""
    if arr.ndim == 0:
        return int(arr)
    return int(arr[lane])


class BatchTrace:
    """A recorded multi-cycle execution of a whole batch.

    The vector analogue of :class:`repro.sim.trace.Trace`: each entry of
    :attr:`cycles` maps group names (``inputs``/``latches``/``props``/
    ``watch``) to dicts of per-lane value arrays.  Scalar ``Trace``
    objects for individual lanes come from :meth:`lane` (or the
    ``Trace.from_batch`` constructor, which delegates here).
    """

    def __init__(self, design_name: str, batch: int) -> None:
        self.design_name = design_name
        self.batch = batch
        self.cycles: list[dict] = []
        #: Per-lane initial contents, mirroring ``Trace.init_*`` but with
        #: array values: ``{latch: array}`` / ``{mem: {addr: array}}``.
        self.init_latches: dict = {}
        self.init_memories: dict = {}

    def __len__(self) -> int:
        return len(self.cycles)

    def value(self, group: str, name: str, cycle: int):
        """The per-lane value array of one signal in one cycle."""
        return self.cycles[cycle][group][name]

    def lane(self, lane: int) -> Trace:
        """Extract one lane as a scalar :class:`Trace` (plain ints)."""
        if not 0 <= lane < self.batch:
            raise IndexError(f"lane {lane} out of range for batch {self.batch}")
        t = Trace(design_name=self.design_name)
        t.init_latches = {n: _lane_int(a, lane)
                          for n, a in self.init_latches.items()}
        t.init_memories = {m: {addr: _lane_int(a, lane)
                               for addr, a in words.items()}
                           for m, words in self.init_memories.items()}
        for cyc in self.cycles:
            t.cycles.append({group: {n: _lane_int(a, lane)
                                     for n, a in vals.items()}
                             for group, vals in cyc.items()})
        return t

    def lanes(self) -> list[Trace]:
        """All lanes as scalar :class:`Trace` objects.

        Much faster than ``[bt.lane(i) for i in range(batch)]``: every
        value array is converted to a python list **once** (one C-level
        ``tolist`` per signal instead of one numpy scalar indexing per
        signal *per lane*), so extraction stays a small fraction of the
        sweep cost even at large batches.
        """
        batch = self.batch

        def as_list(arr):
            if arr.ndim == 0:
                return [int(arr)] * batch
            return arr.tolist()

        init_l = {n: as_list(a) for n, a in self.init_latches.items()}
        init_m = {m: {addr: as_list(a) for addr, a in words.items()}
                  for m, words in self.init_memories.items()}
        cyc_lists = [{group: {n: as_list(a) for n, a in vals.items()}
                      for group, vals in cyc.items()}
                     for cyc in self.cycles]
        out = []
        for i in range(batch):
            t = Trace(design_name=self.design_name)
            t.init_latches = {n: v[i] for n, v in init_l.items()}
            t.init_memories = {m: {addr: v[i] for addr, v in words.items()}
                               for m, words in init_m.items()}
            t.cycles = [{group: {n: v[i] for n, v in vals.items()}
                         for group, vals in cyc.items()}
                        for cyc in cyc_lists]
            out.append(t)
        return out

    def prop_matrix(self, name: str):
        """Property values as a ``(cycles, batch)`` array."""
        return np.stack([np.broadcast_to(c["props"][name], (self.batch,))
                         for c in self.cycles])

    def first_cycle_where(self, name: str, value: int) -> list[Optional[int]]:
        """Per lane: first cycle where property ``name`` equals ``value``.

        This is the batched failure oracle: for an invariant pass
        ``value=0``, for a reach target ``value=1``; ``None`` lanes never
        hit.
        """
        if not self.cycles:
            return [None] * self.batch
        hits = self.prop_matrix(name) == np.uint64(value)
        any_hit = hits.any(axis=0)
        first = hits.argmax(axis=0)
        return [int(first[i]) if any_hit[i] else None
                for i in range(self.batch)]


# -- compiled evaluation plans ---------------------------------------------

#: Plans are cached per design (weakly, so designs stay collectable),
#: sub-keyed on the watched expressions: compile once, simulate many.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Design, dict]" = \
    weakref.WeakKeyDictionary()


def _plan_for(design: Design, watch: Mapping[str, Expr]) -> "_CompiledPlan":
    watch = dict(watch or {})
    key = tuple(sorted((n, e._id) for n, e in watch.items()))
    per_design = _PLAN_CACHE.setdefault(design, {})
    plan = per_design.get(key)
    if plan is None:
        plan = _CompiledPlan(design, watch)
        per_design[key] = plan
    return plan


def _mask_of(width: int):
    return np.uint64((1 << width) - 1)


def _op_not(s, a, m):
    def step(values, sim):
        values[s] = ~values[a] & m
    return step


def _op_slice(s, a, lo, m):
    def step(values, sim):
        values[s] = (values[a] >> lo) & m
    return step


def _op_alias(s, a):
    def step(values, sim):
        values[s] = values[a]
    return step


def _op_mux(s, sel, t, e):
    def step(values, sim):
        values[s] = np.where(values[sel] != 0, values[t], values[e])
    return step


def _op_concat(s, lo, hi, shift):
    def step(values, sim):
        values[s] = values[lo] | (values[hi] << shift)
    return step


def _op_and(s, a, b):
    def step(values, sim):
        values[s] = values[a] & values[b]
    return step


def _op_or(s, a, b):
    def step(values, sim):
        values[s] = values[a] | values[b]
    return step


def _op_xor(s, a, b):
    def step(values, sim):
        values[s] = values[a] ^ values[b]
    return step


def _op_add(s, a, b, m):
    def step(values, sim):
        values[s] = (values[a] + values[b]) & m
    return step


def _op_sub(s, a, b, m):
    def step(values, sim):
        values[s] = (values[a] - values[b]) & m
    return step


def _op_eq(s, a, b):
    def step(values, sim):
        values[s] = (values[a] == values[b]).astype(np.uint64)
    return step


def _op_ult(s, a, b):
    def step(values, sim):
        values[s] = (values[a] < values[b]).astype(np.uint64)
    return step


def _op_memread(s, a, e, mem_name):
    zero = np.uint64(0)

    def step(values, sim):
        data = sim.mems[mem_name][sim._lanes, values[a]]
        values[s] = np.where(values[e] != 0, data, zero)
    return step


class _CompiledPlan:
    """A design compiled to a topologically-ordered array program.

    Every expression node reachable from the latch next-state functions,
    the memory port wiring, the properties and the watched expressions
    gets one *slot*; :attr:`steps` is the flat list of per-node closures
    that fills the computed slots in dependency order.  Memory-read
    nodes depend on their port's address/enable cones, so chained reads
    (port B addressed by port A's data) interleave correctly — the same
    order :meth:`Design.port_evaluation_order` validates.
    """

    def __init__(self, design: Design, watch: Mapping[str, Expr]) -> None:
        self.design = design
        ports = {(m.name, p.index): p for m in design.memories.values()
                 for p in m.read_ports}

        roots: list[Expr] = [latch.next for latch in design.latches.values()]
        for mem in design.memories.values():
            for p in mem.write_ports:
                roots += [p.addr, p.en, p.data]
        roots += [prop.expr for prop in design.properties.values()]
        roots += list(watch.values())

        def deps(e: Expr) -> tuple:
            if e.kind == "memread":
                p = ports[e.payload]
                return (p.addr, p.en)
            return e.args

        order: list[Expr] = []
        seen: set[int] = set()
        for root in roots:
            stack = [root]
            while stack:
                e = stack[-1]
                if e._id in seen:
                    stack.pop()
                    continue
                pending = [a for a in deps(e) if a._id not in seen]
                if pending:
                    stack.extend(pending)
                    continue
                stack.pop()
                seen.add(e._id)
                order.append(e)

        slots = {e._id: i for i, e in enumerate(order)}
        self.nslots = len(order)
        self.const_init: list[tuple[int, object]] = []
        self.input_slots: dict[str, int] = {}
        self.latch_slots: dict[str, int] = {}
        self.steps: list = []

        for e in order:
            if e.width > MAX_WIDTH:
                raise ValueError(
                    f"expression width {e.width} exceeds the vector "
                    f"simulator's {MAX_WIDTH}-bit lanes; use the scalar "
                    f"Simulator")
            s = slots[e._id]
            k = e.kind
            if k == "const":
                self.const_init.append(
                    (s, np.asarray(e.payload, dtype=np.uint64)))
            elif k == "input":
                self.input_slots[e.payload] = s
            elif k == "latch":
                self.latch_slots[e.payload] = s
            elif k == "memread":
                p = ports[e.payload]
                self.steps.append(_op_memread(
                    s, slots[p.addr._id], slots[p.en._id], e.payload[0]))
            elif k == "not":
                self.steps.append(_op_not(s, slots[e.args[0]._id],
                                          _mask_of(e.width)))
            elif k == "slice":
                lo, _hi = e.payload
                self.steps.append(_op_slice(s, slots[e.args[0]._id], lo,
                                            _mask_of(e.width)))
            elif k == "zext":
                self.steps.append(_op_alias(s, slots[e.args[0]._id]))
            elif k == "mux":
                self.steps.append(_op_mux(s, slots[e.args[0]._id],
                                          slots[e.args[1]._id],
                                          slots[e.args[2]._id]))
            elif k == "concat":
                self.steps.append(_op_concat(s, slots[e.args[0]._id],
                                             slots[e.args[1]._id],
                                             e.args[0].width))
            else:
                a, b = slots[e.args[0]._id], slots[e.args[1]._id]
                if k == "and":
                    self.steps.append(_op_and(s, a, b))
                elif k == "or":
                    self.steps.append(_op_or(s, a, b))
                elif k == "xor":
                    self.steps.append(_op_xor(s, a, b))
                elif k == "add":
                    self.steps.append(_op_add(s, a, b, _mask_of(e.width)))
                elif k == "sub":
                    self.steps.append(_op_sub(s, a, b, _mask_of(e.width)))
                elif k == "eq":
                    self.steps.append(_op_eq(s, a, b))
                elif k == "ult":
                    self.steps.append(_op_ult(s, a, b))
                else:
                    raise ValueError(f"unknown expression kind {k!r}")

        self.next_slots = {name: slots[latch.next._id]
                           for name, latch in design.latches.items()}
        self.wports = [(mem.name, slots[p.addr._id], slots[p.en._id],
                        slots[p.data._id])
                       for mem in design.memories.values()
                       for p in mem.write_ports]
        self.prop_slots = {name: slots[prop.expr._id]
                           for name, prop in design.properties.items()}
        self.watch_slots = {name: slots[e._id] for name, e in watch.items()}


class VectorSimulator:
    """Cycle-accurate simulation of ``batch`` independent trials at once.

    Mirrors the scalar :class:`repro.sim.Simulator` semantics bit for
    bit — memory defaults, read-enable gating, write-port priority,
    pre-state-update property sampling — with every value an array of
    one lane per trial.  ``init_latches`` / ``init_memories`` values may
    be plain ints (applied to every lane) or ``(batch,)`` arrays /
    sequences (per-lane values); the same goes for the per-cycle input
    mappings.

    A batch of 1 degenerates cleanly to the scalar behaviour; the
    compiled plan is cached on the design, so constructing many
    simulators for the same design (the shrinker's pattern) pays for
    compilation once.
    """

    def __init__(self, design: Design, batch: int,
                 init_latches: Optional[Mapping] = None,
                 init_memories: Optional[Mapping] = None,
                 watch: Optional[Mapping[str, Expr]] = None) -> None:
        _require_numpy()
        design.validate()
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.design = design
        self.batch = batch
        self._plan = _plan_for(design, watch or {})
        self._lanes = np.arange(batch)
        self.cycle = 0

        self.latches: dict[str, object] = {}
        init_latches = dict(init_latches or {})
        for latch in design.latches.values():
            if latch.name in init_latches:
                value = init_latches[latch.name]
            elif latch.init is not None:
                value = latch.init
            else:
                value = 0
            self.latches[latch.name] = self._materialize(value, latch.width)

        self.mems: dict[str, object] = {}
        self._init_latches_rec = {
            name: self.latches[name]
            for name, latch in design.latches.items()
            if latch.init is None or name in init_latches
        }
        self._init_memories_rec: dict[str, dict[int, object]] = {}
        init_memories = init_memories or {}
        for mem in design.memories.values():
            default = (mem.init or 0) & ((1 << mem.data_width) - 1)
            arr = np.full((batch, mem.num_words), default, dtype=np.uint64)
            merged: dict[int, object] = dict(mem.init_words)
            for addr, value in dict(init_memories.get(mem.name, {})).items():
                merged[addr & (mem.num_words - 1)] = value
            rec: dict[int, object] = {}
            for addr, value in merged.items():
                word = self._materialize(value, mem.data_width)
                arr[:, addr] = word
                rec[addr] = word
            self.mems[mem.name] = arr
            if rec or mem.init is None:
                self._init_memories_rec[mem.name] = rec

        self._values: list = [None] * self._plan.nslots
        for slot, const in self._plan.const_init:
            self._values[slot] = const
        self._inputs: dict[str, object] = {}

    def _materialize(self, value, width: int):
        """A (batch,)-shaped uint64 array of ``value`` masked to width."""
        mask = (1 << width) - 1
        if isinstance(value, (int,) + ((np.integer,) if np else ())):
            return np.full(self.batch, int(value) & mask, dtype=np.uint64)
        arr = np.asarray(value)
        arr = arr.astype(np.uint64, copy=True) & np.uint64(mask)
        if arr.shape != (self.batch,):
            arr = np.broadcast_to(arr, (self.batch,)).copy()
        return arr

    # -- single-cycle evaluation -----------------------------------------

    def begin_cycle(self, inputs: Optional[Mapping] = None) -> None:
        """Present this cycle's inputs and sweep the evaluation plan."""
        plan = self._plan
        values = self._values
        inputs = inputs or {}
        self._inputs = {}
        for inp in self.design.inputs.values():
            arr = self._materialize(inputs.get(inp.name, 0), inp.width)
            self._inputs[inp.name] = arr
            slot = plan.input_slots.get(inp.name)
            if slot is not None:
                values[slot] = arr
        for name, slot in plan.latch_slots.items():
            values[slot] = self.latches[name]
        with np.errstate(over="ignore"):
            for step in plan.steps:
                step(values, self)

    def values_of_prop(self, name: str):
        """Per-lane property values in the current cycle."""
        return np.broadcast_to(self._values[self._plan.prop_slots[name]],
                               (self.batch,))

    def commit_cycle(self) -> None:
        """Latch next-state values and apply enable-masked memory writes."""
        plan = self._plan
        values = self._values
        batch = self.batch
        next_latches = {
            name: self._materialize(values[slot],
                                    self.design.latches[name].width)
            for name, slot in plan.next_slots.items()
        }
        with np.errstate(over="ignore"):
            for mem_name, a_s, e_s, d_s in plan.wports:
                en = np.broadcast_to(values[e_s], (batch,))
                strobe = en != 0
                if not strobe.any():
                    continue
                addr = np.broadcast_to(values[a_s], (batch,))
                data = np.broadcast_to(values[d_s], (batch,))
                # Later ports run later, so the highest index wins —
                # equation (4)'s priority order.
                self.mems[mem_name][self._lanes[strobe],
                                    addr[strobe]] = data[strobe]
        self.latches = next_latches
        self.cycle += 1

    def step(self, inputs: Optional[Mapping] = None) -> None:
        """Convenience: begin + commit one cycle."""
        self.begin_cycle(inputs)
        self.commit_cycle()

    # -- batched runs -------------------------------------------------------

    def run(self, input_sequence: Sequence[Mapping]) -> BatchTrace:
        """Run a sequence of cycles, recording a :class:`BatchTrace`.

        Properties (and watched expressions given at construction) are
        sampled each cycle *before* the state update, matching the BMC
        frame semantics and the scalar ``Simulator.run``.
        """
        plan = self._plan
        bt = BatchTrace(self.design.name, self.batch)
        bt.init_latches = dict(self._init_latches_rec)
        bt.init_memories = {m: dict(c)
                            for m, c in self._init_memories_rec.items()}
        for inputs in input_sequence:
            self.begin_cycle(inputs)
            values = self._values
            bt.cycles.append({
                "inputs": dict(self._inputs),
                "latches": dict(self.latches),
                "props": {name: values[slot]
                          for name, slot in plan.prop_slots.items()},
                "watch": {name: values[slot]
                          for name, slot in plan.watch_slots.items()},
            })
            self.commit_cycle()
        return bt

    def check_property_at(self, prop_name: str,
                          input_sequence: Sequence[Mapping]) -> list:
        """Per-cycle property value arrays over a run."""
        out = []
        for inputs in input_sequence:
            self.begin_cycle(inputs)
            out.append(self.values_of_prop(prop_name).copy())
            self.commit_cycle()
        return out
