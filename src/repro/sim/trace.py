"""Trace capture and VCD export."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TextIO


@dataclass
class Trace:
    """A recorded multi-cycle execution.

    Each entry of :attr:`cycles` is a dict with ``inputs``, ``latches``,
    ``props`` and ``watch`` sub-dicts mapping names to integer values for
    that cycle (pre-state-update, matching BMC frame semantics).
    """

    design_name: str = ""
    cycles: list[dict] = field(default_factory=list)
    #: Initial memory contents used for the run (arbitrary-init memories).
    init_memories: dict = field(default_factory=dict)
    #: Initial latch overrides used for the run (arbitrary-init latches).
    init_latches: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.cycles)

    def value(self, group: str, name: str, cycle: int) -> int:
        return self.cycles[cycle][group][name]

    def inputs_sequence(self) -> list[dict]:
        """The input vectors, replayable through the simulator."""
        return [dict(c["inputs"]) for c in self.cycles]

    def to_dict(self) -> dict:
        """JSON-ready form (memory addresses become string keys)."""
        return {
            "design_name": self.design_name,
            "cycles": [{group: dict(vals) for group, vals in cyc.items()}
                       for cyc in self.cycles],
            "init_memories": {name: {str(addr): val
                                     for addr, val in sorted(words.items())}
                              for name, words in sorted(self.init_memories.items())},
            "init_latches": dict(sorted(self.init_latches.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Inverse of :meth:`to_dict` — the round-trip for service
        ``--json`` output and fuzz-farm reproducer files."""
        trace = cls(design_name=data.get("design_name", ""))
        trace.cycles = [
            {group: {name: int(value) for name, value in vals.items()}
             for group, vals in cyc.items()}
            for cyc in data.get("cycles", [])
        ]
        trace.init_memories = {
            name: {int(addr): int(value) for addr, value in words.items()}
            for name, words in data.get("init_memories", {}).items()
        }
        trace.init_latches = {name: int(value) for name, value
                              in data.get("init_latches", {}).items()}
        return trace

    @classmethod
    def from_batch(cls, batch, lane: int) -> "Trace":
        """Extract one lane of a vector run
        (:class:`repro.sim.vector.BatchTrace`) as a scalar trace."""
        return batch.lane(lane)

    def format_table(self, names: list[tuple[str, str]] | None = None,
                     max_cycles: int = 32) -> str:
        """Human-readable table of selected ``(group, name)`` signals."""
        if not self.cycles:
            return "<empty trace>"
        if names is None:
            first = self.cycles[0]
            names = [("inputs", n) for n in first["inputs"]]
            names += [("latches", n) for n in first["latches"]]
            names += [("props", n) for n in first["props"]]
        header = ["cycle"] + [n for (_g, n) in names]
        rows = [header]
        for k, cyc in enumerate(self.cycles[:max_cycles]):
            rows.append([str(k)] + [str(cyc[g].get(n, "-")) for (g, n) in names])
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                 for row in rows]
        if len(self.cycles) > max_cycles:
            lines.append(f"... ({len(self.cycles) - max_cycles} more cycles)")
        return "\n".join(lines)


def write_vcd(out: TextIO, trace: Trace, widths: dict[tuple[str, str], int],
              timescale: str = "1 ns") -> None:
    """Write a trace as a Value Change Dump for waveform viewers.

    ``widths`` maps ``(group, name)`` to the signal's bit width; only the
    listed signals are dumped.
    """
    out.write(f"$timescale {timescale} $end\n")
    out.write(f"$scope module {trace.design_name or 'trace'} $end\n")
    idents: dict[tuple[str, str], str] = {}
    for i, key in enumerate(widths):
        ident = _vcd_ident(i)
        idents[key] = ident
        group, name = key
        out.write(f"$var wire {widths[key]} {ident} {group}.{name} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")
    prev: dict[tuple[str, str], int | None] = {k: None for k in widths}
    for cycle_index, cycle in enumerate(trace.cycles):
        out.write(f"#{cycle_index}\n")
        for key, ident in idents.items():
            group, name = key
            value = cycle.get(group, {}).get(name)
            if value is None or value == prev[key]:
                continue
            prev[key] = value
            w = widths[key]
            if w == 1:
                out.write(f"{value & 1}{ident}\n")
            else:
                out.write(f"b{value:b} {ident}\n")
    out.write(f"#{len(trace.cycles)}\n")


def read_vcd(inp: TextIO) -> Trace:
    """Parse a VCD produced by :func:`write_vcd` back into a trace.

    Reconstructs full per-cycle values (VCD only dumps *changes*; held
    values are filled in) for every declared ``group.name`` variable.
    Only the subset of VCD that :func:`write_vcd` emits is supported —
    enough for round-trip tests and for re-importing dumped waveforms.
    """
    trace = Trace()
    by_ident: dict[str, tuple[str, str]] = {}
    current: dict[tuple[str, str], int] = {}
    in_cycle = False

    def flush() -> None:
        cycle: dict[str, dict[str, int]] = {}
        for (group, name), value in current.items():
            cycle.setdefault(group, {})[name] = value
        trace.cycles.append(cycle)

    for raw in inp:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("$scope"):
            parts = line.split()
            if len(parts) >= 3:
                trace.design_name = parts[2]
            continue
        if line.startswith("$var"):
            # $var wire <width> <ident> <group>.<name> $end
            parts = line.split()
            ident, full = parts[3], parts[4]
            group, _, name = full.partition(".")
            by_ident[ident] = (group, name)
            continue
        if line.startswith("$"):
            continue
        if line.startswith("#"):
            if in_cycle:
                flush()
            in_cycle = True
            continue
        if line.startswith("b"):
            bits, ident = line[1:].split()
            current[by_ident[ident]] = int(bits, 2)
        else:
            current[by_ident[line[1:]]] = int(line[0])
    # The trailing "#<len>" marker already flushed the final cycle; a
    # truncated file without it still flushes what accumulated.
    if in_cycle and current and len(trace.cycles) == 0:
        flush()
    return trace


def _vcd_ident(i: int) -> str:
    chars = "".join(chr(c) for c in range(33, 127))
    base = len(chars)
    s = chars[i % base]
    i //= base
    while i:
        s = chars[i % base] + s
        i //= base
    return s
