"""Cycle-accurate simulation substrate (S4).

Simulates a :class:`repro.design.Design` with sparse memory contents,
used to replay and validate BMC counterexamples/witnesses, to drive the
examples, and as the reference semantics in differential tests against
both the explicit and the EMM verification paths.
"""

from repro.sim.simulator import Simulator
from repro.sim.trace import Trace, write_vcd

__all__ = ["Simulator", "Trace", "write_vcd"]
