"""Cycle-accurate simulation substrate (S4).

Simulates a :class:`repro.design.Design` with sparse memory contents,
used to replay and validate BMC counterexamples/witnesses, to drive the
examples, and as the reference semantics in differential tests against
both the explicit and the EMM verification paths.

Two interchangeable evaluation engines sit behind one Oracle API
(:mod:`repro.sim.oracle`): the scalar reference interpreter
(:class:`Simulator`) and the NumPy batch simulator
(:class:`repro.sim.vector.VectorSimulator`), which evaluates many
stimulus vectors per pass and powers the differential fuzz farm
(:mod:`repro.sim.fuzzfarm`) and batched counterexample shrinking.
"""

from repro.sim.simulator import Simulator
from repro.sim.trace import Trace, read_vcd, write_vcd
from repro.sim.oracle import (ExplicitOracle, Oracle, SimulatorOracle,
                              Stimulus, VectorOracle, Verdict,
                              default_oracle)
from repro.sim.vector import BatchTrace, VectorSimulator, have_numpy

__all__ = ["Simulator", "Trace", "write_vcd", "read_vcd",
           "Oracle", "SimulatorOracle", "VectorOracle", "ExplicitOracle",
           "Stimulus", "Verdict", "default_oracle",
           "BatchTrace", "VectorSimulator", "have_numpy"]
