"""Per-job resource quotas for the verification service.

The quota *mechanisms* live in the BMC layer, where they can act at the
right granularity: :meth:`repro.bmc.session.EncodingSession.extend_to`
enforces the clause+variable watermark between frames, and the engine's
run loop polls the RSS and wall budgets between depths, degrading the
run to a sound partial answer (:data:`repro.bmc.results.DEGRADED` —
"no CEX up to depth d, budget exhausted") instead of dying.  This
module is the service-side bundle: one picklable value the service and
CLI thread through every job's options, so an over-budget shard
degrades the merged answer's *depth* rather than killing the run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.bmc.engine import BmcOptions
from repro.perf import current_rss_mb

__all__ = ["JobQuotas", "current_rss_mb"]


@dataclass(frozen=True)
class JobQuotas:
    """The per-job resource budget a service request runs under.

    All fields are run knobs — they never change what is encoded, only
    how far a job is allowed to take it — so applying them to a job's
    options does not change the session-cache key
    (:meth:`repro.bmc.engine.BmcOptions.encoding_key`).
    """

    #: Current-RSS ceiling per worker, polled between depths.
    mem_quota_mb: Optional[float] = None
    #: Watermark on the session's solver clauses+variables, enforced
    #: between frames inside ``EncodingSession.extend_to``.
    clause_var_quota: Optional[int] = None
    #: Wall budget per job (one depth window), also capping each solve's
    #: in-check deadline.
    wall_quota_s: Optional[float] = None

    def __bool__(self) -> bool:
        return (self.mem_quota_mb is not None
                or self.clause_var_quota is not None
                or self.wall_quota_s is not None)

    def apply(self, options: BmcOptions) -> BmcOptions:
        """Options with these quotas set (set fields only; no-op when empty)."""
        if not self:
            return options
        fields = {}
        if self.mem_quota_mb is not None:
            fields["mem_quota_mb"] = self.mem_quota_mb
        if self.clause_var_quota is not None:
            fields["clause_var_quota"] = self.clause_var_quota
        if self.wall_quota_s is not None:
            fields["wall_quota_s"] = self.wall_quota_s
        return replace(options, **fields)
