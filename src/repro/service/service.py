"""Sharded multi-property verification service.

The service turns the session/scheduler split of :mod:`repro.bmc` into
a system-level API: a request is a set of *(property × options ×
depth-window)* jobs over one design, sharded across worker processes
(``concurrent.futures.ProcessPoolExecutor``) or run inline, with
results streamed as they land.

Three behaviours the per-call :func:`repro.bmc.verify` cannot give:

* **session sharing** — every job of a worker process (or the inline
  path) runs against a :class:`repro.bmc.session.SessionCache`, so N
  properties of the same design under the same options share one
  unrolled CNF plus the solver's learned clauses;
* **first-CEX-wins** — once any job reports a counterexample for a
  property, that property's remaining jobs are cancelled (pending) or
  suppressed (already running); the stream shows the cancellations;
* **depth-window sharding** — ``depth_windows`` splits the depth range
  of each property into contiguous shards checked by separate jobs
  (frames below a window are still encoded — only the *checks* are
  restricted, so each shard is independently sound).

Designs cross the process boundary as *factories* (a picklable
zero-argument callable), not as pickled ``Design`` objects — deep
expression DAGs and pickle recursion do not mix.  Workers key their
session cache on :meth:`repro.design.netlist.Design.fingerprint`, so
rebuilding the design per job still reuses the worker's live session.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.bmc.engine import BmcEngine, BmcOptions
from repro.bmc.results import BOUNDED, CEX, BmcResult
from repro.bmc.session import SessionCache
from repro.design.netlist import Design

#: Stream status of a job suppressed by first-CEX-wins (no result).
CANCELLED = "cancelled"


@dataclass(frozen=True)
class ServiceJob:
    """One schedulable unit: a property checked over a depth window."""

    property_name: str
    options: BmcOptions
    #: ``(lo, hi)`` inclusive depth range, or None for the options' full
    #: ``0..max_depth``.
    window: Optional[tuple[int, int]] = None


@dataclass
class ServiceResult:
    """One streamed entry: a job's outcome, in completion order."""

    property_name: str
    window: Optional[tuple[int, int]]
    #: The job's :class:`BmcResult` status, or :data:`CANCELLED` when a
    #: sibling's counterexample made this job moot.
    status: str
    result: Optional[BmcResult]


def shard_depths(max_depth: int, shards: int) -> list[tuple[int, int]]:
    """Split ``0..max_depth`` into ``shards`` contiguous windows.

    The windows partition the range, which is what makes per-window
    verdicts mergeable (:func:`merge_window_results`): a proof in window
    k is conditional only on the absence of counterexamples below, which
    windows 0..k-1 establish.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    total = max_depth + 1
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    windows = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0) - 1
        windows.append((lo, hi))
        lo = hi + 1
    return windows


def merge_window_results(results: Sequence[BmcResult]) -> BmcResult:
    """Fold per-window results (ascending windows) into one verdict.

    Mirrors the sequential depth scan: the first window that concluded
    (CEX, PROOF or TIMEOUT) is the answer — sequentially, later depths
    would never have run; if every window stayed BOUNDED, the deepest
    one is.
    """
    if not results:
        raise ValueError("no results to merge")
    for r in results:
        if r.status != BOUNDED:
            return r
    return results[-1]


# -- worker side (must be module-level for pickling) -----------------------

_worker_cache: Optional[SessionCache] = None


def _worker_run(design_factory: Callable[[], Design], property_name: str,
                options: BmcOptions,
                window: Optional[tuple[int, int]]) -> BmcResult:
    """Run one job in a worker process, reusing its process-local cache.

    The cache is keyed on content (fingerprint), so the design rebuilt
    by the factory on every call still maps onto the worker's live
    session — each worker pays for the encoding once per
    (design, options), no matter how many jobs it drains.
    """
    global _worker_cache
    if _worker_cache is None:
        _worker_cache = SessionCache()
    design = design_factory()
    session = _worker_cache.get_or_create(design, options)
    engine = BmcEngine(session.design, property_name, options,
                       session=session)
    return engine.run(window=window)


class VerificationService:
    """Schedules verification jobs for one design across workers.

    ``design_factory`` is a picklable zero-argument callable returning
    the design (e.g. ``functools.partial(build_fifo, params)``).  With
    ``jobs <= 1`` everything runs inline in this process — same
    semantics, deterministic completion order, no pickling requirement.
    The service is a context manager; ``close()`` shuts the pool down.

    Repeated ``run()``/``stream()`` calls reuse live sessions: inline
    through :attr:`cache`, pooled through each worker's process-local
    cache (workers persist for the service's lifetime).
    """

    def __init__(self, design_factory: Callable[[], Design],
                 options: Optional[BmcOptions] = None, jobs: int = 1,
                 session_cache: Optional[SessionCache] = None) -> None:
        self.design_factory = design_factory
        self.options = options or BmcOptions()
        self.jobs = max(1, jobs)
        self.cache = session_cache if session_cache is not None else SessionCache()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._design: Optional[Design] = None

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _get_design(self) -> Design:
        if self._design is None:
            self._design = self.design_factory()
        return self._design

    # -- planning ----------------------------------------------------------

    def plan(self, properties: Optional[Sequence[str]] = None,
             options: Optional[BmcOptions] = None,
             depth_windows: Optional[Sequence[tuple[int, int]]] = None,
             ) -> list[ServiceJob]:
        """The job list a request expands to: property × window.

        Windows must be ascending and contiguous when given (see
        :func:`shard_depths`); properties default to all of the design's,
        sorted.
        """
        opts = options or self.options
        if properties is None:
            properties = sorted(self._get_design().properties)
        windows: Sequence[Optional[tuple[int, int]]] = (
            list(depth_windows) if depth_windows else [None])
        return [ServiceJob(name, opts, w)
                for name in properties for w in windows]

    # -- execution ---------------------------------------------------------

    def stream(self, properties: Optional[Sequence[str]] = None, *,
               options: Optional[BmcOptions] = None,
               depth_windows: Optional[Sequence[tuple[int, int]]] = None,
               ) -> Iterator[ServiceResult]:
        """Yield job outcomes as they complete (first-CEX-wins applied)."""
        jobs = self.plan(properties, options, depth_windows)
        if self.jobs == 1:
            yield from self._stream_inline(jobs)
        else:
            yield from self._stream_pool(jobs)

    def _stream_inline(self, jobs: list[ServiceJob]) -> Iterator[ServiceResult]:
        decided: set[str] = set()
        for job in jobs:
            if job.property_name in decided:
                yield ServiceResult(job.property_name, job.window,
                                    CANCELLED, None)
                continue
            design = self._get_design()
            session = self.cache.get_or_create(design, job.options)
            engine = BmcEngine(session.design, job.property_name,
                               job.options, session=session)
            result = engine.run(window=job.window)
            yield ServiceResult(job.property_name, job.window,
                                result.status, result)
            if result.status == CEX:
                decided.add(job.property_name)

    def _stream_pool(self, jobs: list[ServiceJob]) -> Iterator[ServiceResult]:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        futures = {
            self._pool.submit(_worker_run, self.design_factory,
                              job.property_name, job.options, job.window): job
            for job in jobs
        }
        decided: set[str] = set()
        for fut in as_completed(futures):
            job = futures[fut]
            if fut.cancelled():
                continue  # its cancellation record was streamed below
            result = fut.result()
            if job.property_name in decided:
                # Sibling finished after the property was decided: its
                # result is suppressed so the first CEX stays the answer.
                yield ServiceResult(job.property_name, job.window,
                                    CANCELLED, None)
                continue
            yield ServiceResult(job.property_name, job.window,
                                result.status, result)
            if result.status == CEX:
                decided.add(job.property_name)
                for other, sibling in futures.items():
                    if (sibling.property_name == job.property_name
                            and other is not fut and other.cancel()):
                        yield ServiceResult(sibling.property_name,
                                            sibling.window, CANCELLED, None)

    def run(self, properties: Optional[Sequence[str]] = None, *,
            options: Optional[BmcOptions] = None,
            depth_windows: Optional[Sequence[tuple[int, int]]] = None,
            ) -> dict[str, BmcResult]:
        """Run all jobs; per-property verdicts with windows merged.

        Without ``depth_windows`` the verdicts (status, depth, trace
        length, method) are identical to sequential per-property
        :func:`repro.bmc.verify` runs.  With sharding, a counterexample
        may be reported from a deeper window than the shallowest one
        that holds it (first-CEX-wins races the windows); statuses still
        agree.
        """
        per_prop: dict[str, list[ServiceResult]] = {}
        for sr in self.stream(properties, options=options,
                              depth_windows=depth_windows):
            if sr.result is not None:
                per_prop.setdefault(sr.property_name, []).append(sr)
        def lo(sr: ServiceResult) -> int:
            return 0 if sr.window is None else sr.window[0]
        return {name: merge_window_results(
                    [sr.result for sr in sorted(entries, key=lo)])
                for name, entries in per_prop.items()}
