"""Sharded multi-property verification service.

The service turns the session/scheduler split of :mod:`repro.bmc` into
a system-level API: a request is a set of *(property × options ×
depth-window)* jobs over one design, sharded across worker processes
(``concurrent.futures.ProcessPoolExecutor``) or run inline, with
results streamed as they land.

Three behaviours the per-call :func:`repro.bmc.verify` cannot give:

* **session sharing** — every job of a worker process (or the inline
  path) runs against a :class:`repro.bmc.session.SessionCache`, so N
  properties of the same design under the same options share one
  unrolled CNF plus the solver's learned clauses;
* **first-CEX-wins** — once any job reports a counterexample for a
  property, that property's remaining jobs are cancelled (pending) or
  suppressed (already running); the stream shows the cancellations;
* **depth-window sharding** — ``depth_windows`` splits the depth range
  of each property into contiguous shards checked by separate jobs
  (frames below a window are still encoded — only the *checks* are
  restricted, so each shard is independently sound).

On top of that sits fault tolerance (see
:mod:`repro.service.supervisor`): worker crashes, hangs and raised
exceptions are attributed, retried under a
:class:`~repro.service.supervisor.RetryPolicy` with capped exponential
backoff, and surfaced as ``retry``/``failed`` lifecycle records in the
stream — every planned job reaches exactly one terminal record, even
when the pool has to be rebuilt mid-run.  Per-job resource budgets
(:class:`repro.service.quota.JobQuotas`) degrade an over-budget job to
a sound partial answer (:data:`repro.bmc.results.DEGRADED`) at depth
granularity instead of killing it.

Designs cross the process boundary as *factories* (a picklable
zero-argument callable), not as pickled ``Design`` objects — deep
expression DAGs and pickle recursion do not mix.  Workers key their
session cache on :meth:`repro.design.netlist.Design.fingerprint`, so
rebuilding the design per job still reuses the worker's live session.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Sequence

from repro.bmc.engine import BmcEngine, BmcOptions
from repro.bmc.results import BOUNDED, CEX, DEGRADED, BmcResult
from repro.bmc.session import SessionCache
from repro.design.netlist import Design
from repro.service.faults import (FaultPlan, POINT_ENTER, POINT_EXIT,
                                  POINT_SESSION)
from repro.service.quota import JobQuotas
from repro.service.supervisor import (ERROR, JobOutcome, JobRetry,
                                      PoolSupervisor, RetryPolicy)

#: Stream status of a job suppressed by first-CEX-wins (no result).
CANCELLED = "cancelled"
#: Stream status of a non-terminal lifecycle record: an attempt failed
#: (``failure`` says how — crash/hang/error) and the job was re-queued.
RETRY = "retry"
#: Stream status of a job whose failures exhausted the retry budget:
#: terminal, ``result`` is None, ``failure`` carries the attribution.
FAILED = "failed"


@dataclass(frozen=True)
class ServiceJob:
    """One schedulable unit: a property checked over a depth window."""

    property_name: str
    options: BmcOptions
    #: ``(lo, hi)`` inclusive depth range, or None for the options' full
    #: ``0..max_depth``.
    window: Optional[tuple[int, int]] = None

    def key(self) -> tuple:
        """Stable identity (used for retry jitter and cancellation)."""
        return (self.property_name, self.window)


@dataclass
class ServiceResult:
    """One streamed entry: a job outcome or lifecycle record, in
    completion order."""

    property_name: str
    window: Optional[tuple[int, int]]
    #: The job's :class:`BmcResult` status, or a service-level status:
    #: :data:`CANCELLED` (sibling's counterexample made the job moot),
    #: :data:`RETRY` (attempt failed, job re-queued — non-terminal) or
    #: :data:`FAILED` (retry budget exhausted — terminal, no result).
    status: str
    result: Optional[BmcResult]
    #: Attempts consumed so far (1 for a first-try success).
    attempts: int = 1
    #: Failure attribution of a RETRY/FAILED record: ``"crash"``,
    #: ``"hang"`` or ``"error"``; None for ordinary results.
    failure: Optional[str] = None
    #: Human-readable failure context (exception text, deadline note).
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form — the CLI's ``--json`` per-job schema."""
        return {
            "property": self.property_name,
            "window": list(self.window) if self.window else None,
            "status": self.status,
            "attempts": self.attempts,
            "failure": self.failure,
            "detail": self.detail,
            "result": None if self.result is None else self.result.to_dict(),
        }


def shard_depths(max_depth: int, shards: int) -> list[tuple[int, int]]:
    """Split ``0..max_depth`` into ``shards`` contiguous windows.

    The windows partition the range, which is what makes per-window
    verdicts mergeable (:func:`merge_window_results`): a proof in window
    k is conditional only on the absence of counterexamples below, which
    windows 0..k-1 establish.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    total = max_depth + 1
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    windows = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0) - 1
        windows.append((lo, hi))
        lo = hi + 1
    return windows


def merge_window_results(results: Sequence[Optional[BmcResult]],
                         windows: Optional[Sequence[tuple[int, int]]] = None,
                         ) -> BmcResult:
    """Fold per-window results (ascending windows) into one verdict.

    Without ``windows`` every result must be present and the fold
    mirrors the sequential depth scan: the first window that concluded
    (CEX, PROOF or TIMEOUT) is the answer — sequentially, later depths
    would never have run; if every window stayed BOUNDED, the deepest
    one is.

    With ``windows`` (aligned with ``results``; entries may be None for
    windows whose job failed or was cancelled) the fold is *gap-aware*:

    * a counterexample is sound wherever it was found — it wins even
      across gaps;
    * PROOF and TIMEOUT only conclude on a contiguous fully-checked
      prefix (a backward-induction proof at depth k is unsound if some
      depth below k was never checked);
    * a missing window, a DEGRADED window (checked only up to its
      reported depth) or a non-contiguous window opens a **gap**: the
      sound frontier stops there, and the merged verdict is DEGRADED
      at the deepest fully-checked depth — a partial answer instead of
      a silent unsound merge.
    """
    if windows is None:
        present = [r for r in results if r is not None]
        if len(present) != len(results):
            raise ValueError("missing window results; pass windows= to "
                             "merge around gaps")
        if not present:
            raise ValueError("no results to merge")
        for r in present:
            if r.status != BOUNDED:
                return r
        return present[-1]

    if len(windows) != len(results):
        raise ValueError("results must align with windows")
    present = [r for r in results if r is not None]
    if not present:
        raise ValueError("no results to merge")
    frontier = windows[0][0] - 1
    gap = False
    last_sound: Optional[BmcResult] = None
    for (lo, hi), r in zip(windows, results):
        if r is not None and r.status == CEX:
            return r
        if gap or r is None or lo != frontier + 1:
            gap = True
            continue
        if r.status == BOUNDED:
            frontier = hi
            last_sound = r
            continue
        if r.status == DEGRADED:
            # Checked cleanly up to r.depth, then its budget ran out:
            # everything above r.depth in this window is a gap.
            frontier = max(frontier, r.depth)
            last_sound = r
            gap = True
            continue
        # PROOF or TIMEOUT on the contiguous prefix: the sequential
        # scan's answer.
        return r
    if not gap:
        return last_sound if last_sound is not None else present[-1]
    base = last_sound if last_sound is not None else present[-1]
    return replace(base, status=DEGRADED, depth=frontier, method=None,
                   trace=None, trace_validated=None)


# -- worker side (must be module-level for pickling) -----------------------

_worker_cache: Optional[SessionCache] = None


def _worker_run(design_factory: Callable[[], Design], property_name: str,
                options: BmcOptions, window: Optional[tuple[int, int]],
                attempt: int = 1,
                fault_plan: Optional[FaultPlan] = None) -> BmcResult:
    """Run one job in a worker process, reusing its process-local cache.

    The cache is keyed on content (fingerprint), so the design rebuilt
    by the factory on every call still maps onto the worker's live
    session — each worker pays for the encoding once per
    (design, options), no matter how many jobs it drains.

    ``fault_plan`` (tests/CI only) may crash, hang, slow, bloat or blow
    up this worker at the named injection points; ``attempt`` lets the
    plan target specific retries.
    """
    ballast = []
    if fault_plan is not None:
        b = fault_plan.fire(POINT_ENTER, property_name, window, attempt)
        if b is not None:
            ballast.append(b)
    global _worker_cache
    if _worker_cache is None:
        _worker_cache = SessionCache()
    design = design_factory()
    session = _worker_cache.get_or_create(design, options)
    if fault_plan is not None:
        b = fault_plan.fire(POINT_SESSION, property_name, window, attempt)
        if b is not None:
            ballast.append(b)
    engine = BmcEngine(session.design, property_name, options,
                       session=session)
    result = engine.run(window=window)
    if fault_plan is not None:
        fault_plan.fire(POINT_EXIT, property_name, window, attempt)
    ballast.clear()
    return result


class VerificationService:
    """Schedules verification jobs for one design across workers.

    ``design_factory`` is a picklable zero-argument callable returning
    the design (e.g. ``functools.partial(build_fifo, params)``).  With
    ``jobs <= 1`` everything runs inline in this process — same
    semantics, deterministic completion order, no pickling requirement.
    The service is a context manager; ``close()`` shuts the pool down.

    Repeated ``run()``/``stream()`` calls reuse live sessions: inline
    through :attr:`cache`, pooled through each worker's process-local
    cache (workers persist for the service's lifetime).

    Fault tolerance: pooled jobs run under a
    :class:`~repro.service.supervisor.PoolSupervisor` — worker crashes
    and raised exceptions are retried per ``retry`` (default: 2 retries
    with capped exponential backoff), and with a ``job_timeout_s`` hung
    jobs are killed and retried too.  The inline path retries raised
    exceptions under the same policy.  ``quotas`` applies per-job
    resource budgets (jobs degrade, not die); ``fault_plan`` injects
    worker faults for the recovery test suite.
    """

    def __init__(self, design_factory: Callable[[], Design],
                 options: Optional[BmcOptions] = None, jobs: int = 1,
                 session_cache: Optional[SessionCache] = None,
                 retry: Optional[RetryPolicy] = None,
                 job_timeout_s: Optional[float] = None,
                 quotas: Optional[JobQuotas] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.design_factory = design_factory
        self.options = options or BmcOptions()
        self.jobs = max(1, jobs)
        self.cache = session_cache if session_cache is not None else SessionCache()
        self.retry = retry if retry is not None else RetryPolicy()
        self.job_timeout_s = job_timeout_s
        self.quotas = quotas
        self.fault_plan = fault_plan
        self._sup: Optional[PoolSupervisor] = None
        self._design: Optional[Design] = None

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down; queued work is cancelled, running
        work terminated, every child process reaped."""
        if self._sup is not None:
            if self._sup.pending():
                self._sup.terminate()
            else:
                self._sup.close(cancel_futures=True)
            self._sup = None

    def _get_design(self) -> Design:
        if self._design is None:
            self._design = self.design_factory()
        return self._design

    # -- planning ----------------------------------------------------------

    def plan(self, properties: Optional[Sequence[str]] = None,
             options: Optional[BmcOptions] = None,
             depth_windows: Optional[Sequence[tuple[int, int]]] = None,
             ) -> list[ServiceJob]:
        """The job list a request expands to: property × window.

        Windows must be ascending and contiguous when given (see
        :func:`shard_depths`); properties default to all of the design's,
        sorted.  The service's :attr:`quotas` are folded into every
        job's options here (run knobs only — the session-cache key is
        unchanged).
        """
        opts = options or self.options
        if self.quotas:
            opts = self.quotas.apply(opts)
        if properties is None:
            properties = sorted(self._get_design().properties)
        windows: Sequence[Optional[tuple[int, int]]] = (
            list(depth_windows) if depth_windows else [None])
        return [ServiceJob(name, opts, w)
                for name in properties for w in windows]

    # -- execution ---------------------------------------------------------

    def stream(self, properties: Optional[Sequence[str]] = None, *,
               options: Optional[BmcOptions] = None,
               depth_windows: Optional[Sequence[tuple[int, int]]] = None,
               ) -> Iterator[ServiceResult]:
        """Yield job outcomes and lifecycle records as they happen.

        First-CEX-wins is applied; every planned job contributes exactly
        one terminal record (a result, FAILED, or CANCELLED), possibly
        preceded by RETRY records.  Abandoning the iterator mid-stream
        is safe: the generator's cleanup cancels queued jobs and tears
        the pool down (``cancel_futures=True``) so no workers leak.
        """
        jobs = self.plan(properties, options, depth_windows)
        if self.jobs == 1:
            yield from self._stream_inline(jobs)
        else:
            yield from self._stream_pool(jobs)

    # -- inline path -------------------------------------------------------

    def _run_one_inline(self, job: ServiceJob, attempt: int) -> BmcResult:
        plan = self.fault_plan
        ballast = []
        if plan is not None:
            b = plan.fire(POINT_ENTER, job.property_name, job.window,
                          attempt, inline=True)
            if b is not None:
                ballast.append(b)
        design = self._get_design()
        session = self.cache.get_or_create(design, job.options)
        if plan is not None:
            b = plan.fire(POINT_SESSION, job.property_name, job.window,
                          attempt, inline=True)
            if b is not None:
                ballast.append(b)
        engine = BmcEngine(session.design, job.property_name,
                           job.options, session=session)
        result = engine.run(window=job.window)
        if plan is not None:
            plan.fire(POINT_EXIT, job.property_name, job.window,
                      attempt, inline=True)
        ballast.clear()
        return result

    def _stream_inline(self, jobs: list[ServiceJob]) -> Iterator[ServiceResult]:
        decided: set[str] = set()
        for job in jobs:
            if job.property_name in decided:
                yield ServiceResult(job.property_name, job.window,
                                    CANCELLED, None)
                continue
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = self._run_one_inline(job, attempt)
                except Exception as exc:  # same policy as pooled workers
                    detail = f"{type(exc).__name__}: {exc}"
                    if attempt > self.retry.max_retries:
                        yield ServiceResult(job.property_name, job.window,
                                            FAILED, None, attempts=attempt,
                                            failure=ERROR, detail=detail)
                        break
                    delay = self.retry.delay_s(attempt, job.key())
                    yield ServiceResult(job.property_name, job.window,
                                        RETRY, None, attempts=attempt,
                                        failure=ERROR, detail=detail)
                    time.sleep(delay)
                    continue
                yield ServiceResult(job.property_name, job.window,
                                    result.status, result, attempts=attempt)
                if result.status == CEX:
                    decided.add(job.property_name)
                break

    # -- pooled path -------------------------------------------------------

    def _get_supervisor(self) -> PoolSupervisor:
        if self._sup is None:
            factory = self.design_factory
            plan = self.fault_plan

            def submit(pool, job, attempt):
                return pool.submit(_worker_run, factory, job.property_name,
                                   job.options, job.window, attempt, plan)

            self._sup = PoolSupervisor(submit, self.jobs, retry=self.retry,
                                       job_timeout_s=self.job_timeout_s,
                                       key_fn=ServiceJob.key)
        return self._sup

    def _stream_pool(self, jobs: list[ServiceJob]) -> Iterator[ServiceResult]:
        sup = self._get_supervisor()
        decided: set[str] = set()
        try:
            for ev in sup.run(jobs):
                if decided:
                    # Sweep jobs of decided properties that re-entered
                    # the queue (e.g. a retry enqueued after the CEX).
                    for job in sup.cancel(
                            lambda j: j.property_name in decided):
                        yield ServiceResult(job.property_name, job.window,
                                            CANCELLED, None)
                if isinstance(ev, JobRetry):
                    if ev.job.property_name in decided:
                        continue
                    yield ServiceResult(ev.job.property_name, ev.job.window,
                                        RETRY, None, attempts=ev.attempt,
                                        failure=ev.failure, detail=ev.detail)
                    continue
                assert isinstance(ev, JobOutcome)
                job = ev.job
                if job.property_name in decided:
                    yield ServiceResult(job.property_name, job.window,
                                        CANCELLED, None,
                                        attempts=ev.attempts)
                    continue
                if ev.result is None:
                    yield ServiceResult(job.property_name, job.window,
                                        FAILED, None, attempts=ev.attempts,
                                        failure=ev.failure)
                    continue
                result: BmcResult = ev.result
                yield ServiceResult(job.property_name, job.window,
                                    result.status, result,
                                    attempts=ev.attempts)
                if result.status == CEX:
                    decided.add(job.property_name)
                    for dropped in sup.cancel(
                            lambda j, name=job.property_name:
                            j.property_name == name):
                        yield ServiceResult(dropped.property_name,
                                            dropped.window, CANCELLED, None)
        finally:
            # Abandoned mid-stream: cancel queued work and tear the pool
            # down so no child processes (or their running jobs) leak.
            if self._sup is not None and self._sup.pending():
                self._sup.terminate()
                self._sup = None

    # -- merged verdicts ---------------------------------------------------

    def run(self, properties: Optional[Sequence[str]] = None, *,
            options: Optional[BmcOptions] = None,
            depth_windows: Optional[Sequence[tuple[int, int]]] = None,
            ) -> dict[str, BmcResult]:
        """Run all jobs; per-property verdicts with windows merged.

        Without ``depth_windows`` the verdicts (status, depth, trace
        length, method) are identical to sequential per-property
        :func:`repro.bmc.verify` runs.  With sharding, a counterexample
        may be reported from a deeper window than the shallowest one
        that holds it (first-CEX-wins races the windows); statuses still
        agree.  Windows whose job FAILED (retries exhausted) become
        gaps: the property's verdict is the deepest sound prefix
        (DEGRADED) rather than an unsound merge across the hole; a
        property with no surviving window at all yields a synthesized
        DEGRADED verdict at depth ``lo - 1``.
        """
        results, _records = self.collect(properties, options=options,
                                         depth_windows=depth_windows)
        return results

    def collect(self, properties: Optional[Sequence[str]] = None, *,
                options: Optional[BmcOptions] = None,
                depth_windows: Optional[Sequence[tuple[int, int]]] = None,
                ) -> tuple[dict[str, BmcResult], list[ServiceResult]]:
        """Like :meth:`run`, but also return the full record stream
        (lifecycle + terminal, in completion order) — the CLI's
        ``--json`` uses it for per-job attempts and attributions."""
        windows = [tuple(w) for w in depth_windows] if depth_windows else None
        records = list(self.stream(properties, options=options,
                                   depth_windows=depth_windows))
        by_prop: dict[str, dict] = {}
        for sr in records:
            if sr.status == RETRY or sr.status == CANCELLED:
                continue
            slot = by_prop.setdefault(sr.property_name, {})
            slot[sr.window] = sr.result  # None for FAILED
        out: dict[str, BmcResult] = {}
        for name, slot in by_prop.items():
            if windows is None:
                results = [r for r in slot.values() if r is not None]
                if results:
                    out[name] = merge_window_results(results)
                else:
                    out[name] = self._degraded_stub(name, -1)
                continue
            aligned = [slot.get(w) for w in windows]
            if any(r is not None for r in aligned):
                out[name] = merge_window_results(aligned, windows)
            else:
                out[name] = self._degraded_stub(name, windows[0][0] - 1)
        return out, records

    def _degraded_stub(self, name: str, depth: int) -> BmcResult:
        """Verdict for a property none of whose jobs survived: nothing
        was checked, reported honestly as DEGRADED at ``depth``."""
        kind = self._get_design().properties[name].kind
        return BmcResult(status=DEGRADED, property_name=name,
                         property_kind=kind, depth=depth)
