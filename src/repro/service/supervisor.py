"""Supervised process-pool execution: crash recovery, hang detection,
retry with capped exponential backoff and deterministic jitter.

``ProcessPoolExecutor`` treats a dead worker as fatal: one segfault,
OOM-kill or ``os._exit`` breaks the executor and every in-flight future
raises ``BrokenProcessPool``.  The :class:`PoolSupervisor` turns those
events into *recoverable job outcomes*:

* **crash** — a future that fails with a broken-pool error while its
  job was observed running is attributed ``"crash"`` and re-queued with
  backoff; the pool is rebuilt.  Jobs that were merely queued on the
  broken pool are resubmitted silently (no attempt charged — they were
  innocent bystanders).
* **hang** — with a ``job_timeout_s``, a job observed running past its
  deadline has its workers killed (the only way to stop a running
  process-pool task), which breaks the pool; the victim is attributed
  ``"hang"`` and re-queued, the pool rebuilt.
* **error** — a worker that raises is attributed ``"error"`` and
  re-queued with backoff (transient faults heal; persistent ones
  exhaust the retry budget).

A job whose failures exhaust :attr:`RetryPolicy.max_retries` yields a
terminal :class:`JobOutcome` with ``result=None`` and its last
attribution — the caller streams it as a ``failed`` record instead of
crashing the run.  Backoff delays are deterministic: exponential in the
attempt number, capped, with jitter derived from a hash of the job's
identity — two runs of the same plan produce the same schedule, and
distinct jobs do not thundering-herd the rebuilt pool.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence, Union

#: Failure attributions carried by retry/terminal records.
CRASH = "crash"
HANG = "hang"
ERROR = "error"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic per-job jitter."""

    #: Re-queues allowed per job after its first attempt (0 = fail fast).
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Jitter fraction: the delay is scaled by ``1 + jitter * h`` where
    #: ``h`` in [0, 1) is a stable hash of (job key, attempt) — spread
    #: without nondeterminism.
    jitter: float = 0.25

    def delay_s(self, attempt: int, key) -> float:
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** max(0, attempt - 1)))
        h = (zlib.crc32(repr((key, attempt)).encode()) % 1000) / 999.0
        return base * (1.0 + self.jitter * h)


@dataclass
class JobRetry:
    """Lifecycle event: an attempt failed and the job was re-queued."""

    job: object
    #: The attempt number that failed (1-based).
    attempt: int
    failure: str  # CRASH | HANG | ERROR
    delay_s: float
    detail: str = ""


@dataclass
class JobOutcome:
    """Terminal event: the job's single final result (or exhaustion)."""

    job: object
    #: The worker's return value; None when retries were exhausted.
    result: object
    attempts: int
    #: Last failure attribution when ``result is None``.
    failure: Optional[str] = None
    #: Every failure the job survived on the way to its result.
    failures: list = field(default_factory=list)


@dataclass
class _JobRec:
    job: object
    key: object
    attempts: int = 0
    failures: list = field(default_factory=list)
    t_started: Optional[float] = None
    hang_suspect: bool = False
    #: The supervisor itself killed this job's pool (hang recovery on a
    #: sibling): requeue without charging an attempt.
    collateral: bool = False
    #: Uncharged resubmits consumed (innocent-bystander path).
    free_resubmits: int = 0
    #: Pool generation the current attempt was submitted to.
    gen: int = -1


class PoolSupervisor:
    """Runs jobs on a rebuildable worker pool under a retry policy.

    ``submit_fn(pool, job, attempt)`` submits one job to the given
    executor and returns its future — the supervisor stays agnostic of
    what a job *is*.  ``key_fn(job)`` gives the stable identity used
    for jitter and cancellation.  Events are yielded as they happen:
    :class:`JobRetry` (lifecycle) and :class:`JobOutcome` (terminal,
    exactly one per job unless cancelled via :meth:`cancel`).
    """

    def __init__(self, submit_fn: Callable[[ProcessPoolExecutor, object, int],
                                           Future],
                 max_workers: int,
                 retry: Optional[RetryPolicy] = None,
                 job_timeout_s: Optional[float] = None,
                 key_fn: Callable[[object], object] = lambda job: job,
                 poll_s: float = 0.05) -> None:
        self.submit_fn = submit_fn
        self.max_workers = max(1, max_workers)
        self.retry = retry or RetryPolicy()
        self.job_timeout_s = job_timeout_s
        self.key_fn = key_fn
        self.poll_s = poll_s
        #: Uncharged resubmits a job may consume before broken-pool
        #: failures start counting against its retry budget.  A job that
        #: crashes *instantly* (before the poll ever observes it
        #: running) is indistinguishable from a queued bystander — the
        #: cap stops such a job from being resubmitted free forever.
        self.max_free_resubmits = 3
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: dict[Future, _JobRec] = {}
        #: (eligible_at, seq, rec) — seq keeps ordering deterministic.
        self._backlog: list = []
        self._seq = 0
        #: Current pool generation; broken futures from an *older*
        #: generation must not trigger another rebuild (which would kill
        #: the fresh pool under the resubmitted jobs).
        self._gen = 0
        #: Pool rebuilds forced by crashes/hangs (observable by tests).
        self.rebuilds = 0

    # -- pool lifecycle ----------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self.rebuilds += 1
        self._pool = None
        self._gen += 1

    def _kill_workers(self) -> None:
        """Terminate every worker process — the only way to stop a hung
        running task; breaks the pool, which :meth:`run` then rebuilds."""
        pool = self._pool
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            if proc.is_alive():
                proc.terminate()

    def pending(self) -> int:
        """Jobs not yet terminal (in flight + queued for retry)."""
        return len(self._inflight) + len(self._backlog)

    def close(self, cancel_futures: bool = True) -> None:
        """Shut the pool down; queued work is cancelled, workers reaped."""
        self._backlog.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel_futures)
            self._pool = None

    def terminate(self) -> None:
        """Hard stop: drop queued work, kill workers, reap the pool.

        Unlike :meth:`close`, running jobs are terminated rather than
        awaited — the abandoned-stream path, where nobody will consume
        their results and waiting could block indefinitely.
        """
        self._backlog.clear()
        self._inflight.clear()
        self._kill_workers()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- cancellation (first-CEX-wins) -------------------------------------

    def cancel(self, predicate: Callable[[object], bool]) -> list:
        """Drop every matching queued/pending job; returns those jobs.

        Running jobs cannot be stopped here (the caller suppresses
        their eventual outcome); matching retry-queue entries and
        successfully-cancelled pending futures never yield an outcome.
        """
        dropped = []
        keep = []
        for entry in self._backlog:
            if predicate(entry[2].job):
                dropped.append(entry[2].job)
            else:
                keep.append(entry)
        self._backlog = keep
        for fut, rec in list(self._inflight.items()):
            if predicate(rec.job) and fut.cancel():
                dropped.append(rec.job)
                del self._inflight[fut]
        return dropped

    # -- main loop ---------------------------------------------------------

    def run(self, jobs: Sequence) -> Iterator[Union[JobRetry, JobOutcome]]:
        """Execute ``jobs``; yield retry and terminal events as they land."""
        for job in jobs:
            self._enqueue(_JobRec(job, self.key_fn(job)), delay_s=0.0)
        while self._backlog or self._inflight:
            self._submit_eligible()
            if not self._inflight:
                # Everything is backing off: sleep to the next eligibility.
                next_at = min(entry[0] for entry in self._backlog)
                time.sleep(max(0.0, min(next_at - time.monotonic(),
                                        self.poll_s)))
                continue
            done, _ = wait(list(self._inflight), timeout=self.poll_s,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for fut, rec in self._inflight.items():
                if fut not in done and rec.t_started is None \
                        and fut.running():
                    rec.t_started = now
            broken = False
            for fut in done:
                rec = self._inflight.pop(fut, None)
                if rec is None or fut.cancelled():
                    continue
                exc = fut.exception()
                if exc is None:
                    yield JobOutcome(rec.job, fut.result(), rec.attempts,
                                     None, rec.failures)
                elif isinstance(exc, (BrokenExecutor, BrokenPipeError,
                                      EOFError)):
                    broken = broken or rec.gen == self._gen
                    if rec.hang_suspect:
                        yield from self._requeue(rec, HANG,
                                                 "job deadline exceeded; "
                                                 "workers killed")
                    elif ((rec.t_started is not None and not rec.collateral)
                          or rec.free_resubmits >= self.max_free_resubmits):
                        yield from self._requeue(rec, CRASH, str(exc))
                    else:
                        # Queued on a pool a sibling broke, or running
                        # when hang recovery killed the workers:
                        # innocent — resubmit without charging.
                        rec.attempts -= 1
                        rec.free_resubmits += 1
                        self._enqueue(rec, delay_s=0.0)
                else:
                    yield from self._requeue(rec, ERROR,
                                             f"{type(exc).__name__}: {exc}")
            if broken:
                self._rebuild_pool()
            self._watch_hangs(now)
        # Normal drain leaves the pool warm for the next request; close()
        # is the explicit shutdown.

    # -- internals ---------------------------------------------------------

    def _enqueue(self, rec: _JobRec, delay_s: float) -> None:
        rec.t_started = None
        rec.hang_suspect = False
        rec.collateral = False
        self._backlog.append((time.monotonic() + delay_s, self._seq, rec))
        self._seq += 1

    def _submit_eligible(self) -> None:
        now = time.monotonic()
        self._backlog.sort(key=lambda entry: (entry[0], entry[1]))
        still = []
        for entry in self._backlog:
            eligible_at, _seq, rec = entry
            if eligible_at > now:
                still.append(entry)
                continue
            rec.attempts += 1
            try:
                fut = self.submit_fn(self._get_pool(), rec.job, rec.attempts)
            except BrokenExecutor:
                # Broke between batches: rebuild once and resubmit.
                self._rebuild_pool()
                fut = self.submit_fn(self._get_pool(), rec.job, rec.attempts)
            rec.gen = self._gen
            self._inflight[fut] = rec
        self._backlog = still

    def _requeue(self, rec: _JobRec, failure: str,
                 detail: str = "") -> Iterator[Union[JobRetry, JobOutcome]]:
        rec.failures.append(failure)
        if rec.attempts > self.retry.max_retries:
            yield JobOutcome(rec.job, None, rec.attempts, failure,
                             rec.failures)
            return
        delay = self.retry.delay_s(rec.attempts, rec.key)
        yield JobRetry(rec.job, rec.attempts, failure, delay, detail)
        self._enqueue(rec, delay)

    def _watch_hangs(self, now: float) -> None:
        if self.job_timeout_s is None:
            return
        hung = [rec for rec in self._inflight.values()
                if rec.t_started is not None
                and now - rec.t_started > self.job_timeout_s
                and not rec.hang_suspect]
        if not hung:
            return
        for rec in hung:
            rec.hang_suspect = True
        for rec in self._inflight.values():
            if not rec.hang_suspect:
                rec.collateral = True
        # Killing the workers breaks the pool; the run loop attributes
        # "hang" to the suspects and resubmits innocents when their
        # futures fail with the broken-pool error.
        self._kill_workers()
