"""Verification as a service: sharded multi-property scheduling.

Built on the encoding/scheduling split of :mod:`repro.bmc` — an
:class:`repro.bmc.session.EncodingSession` per (design, options) shared
by every property, with jobs sharded across processes and results
streamed under a first-counterexample-wins policy.
"""

from repro.bmc.session import SessionCache
from repro.service.service import (CANCELLED, ServiceJob, ServiceResult,
                                   VerificationService, merge_window_results,
                                   shard_depths)

__all__ = ["VerificationService", "ServiceJob", "ServiceResult",
           "SessionCache", "CANCELLED", "merge_window_results",
           "shard_depths"]
