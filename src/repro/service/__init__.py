"""Verification as a service: sharded multi-property scheduling.

Built on the encoding/scheduling split of :mod:`repro.bmc` — an
:class:`repro.bmc.session.EncodingSession` per (design, options) shared
by every property, with jobs sharded across processes and results
streamed under a first-counterexample-wins policy.

The service is fault tolerant: a :class:`PoolSupervisor` recovers from
worker crashes and hangs (attribution, retry with capped backoff, pool
rebuild), :class:`JobQuotas` degrade over-budget jobs to sound partial
answers instead of killing them, and :class:`FaultPlan` injects worker
faults deterministically so the recovery machinery stays tested.
"""

from repro.bmc.session import SessionCache
from repro.service.faults import (ANY_WINDOW, FAULT_KINDS, FaultInjected,
                                  FaultPlan, FaultProbe, INJECTION_POINTS,
                                  Injection, POINT_ENTER, POINT_EXIT,
                                  POINT_SESSION)
from repro.service.quota import JobQuotas
from repro.service.service import (CANCELLED, FAILED, RETRY, ServiceJob,
                                   ServiceResult, VerificationService,
                                   merge_window_results, shard_depths)
from repro.service.supervisor import (CRASH, ERROR, HANG, JobOutcome,
                                      JobRetry, PoolSupervisor, RetryPolicy)

__all__ = ["VerificationService", "ServiceJob", "ServiceResult",
           "SessionCache", "CANCELLED", "RETRY", "FAILED",
           "merge_window_results", "shard_depths",
           "PoolSupervisor", "RetryPolicy", "JobRetry", "JobOutcome",
           "CRASH", "HANG", "ERROR",
           "JobQuotas",
           "FaultPlan", "FaultProbe", "FaultInjected", "Injection",
           "POINT_ENTER", "POINT_SESSION", "POINT_EXIT",
           "INJECTION_POINTS", "FAULT_KINDS", "ANY_WINDOW"]
