"""Seeded fault-injection harness for the verification service.

The recovery machinery of :mod:`repro.service.supervisor` is only
trustworthy if it is *exercised*: this module injects worker failures —
process crashes, hangs, slow-downs, raised exceptions and memory bloat —
at named points in the worker execution path, deterministically, so the
fault-tolerance test suite can prove the invariants the service claims:

* every planned job reaches exactly one terminal result,
* no orphaned worker processes remain after a run,
* final verdicts under injected faults are bit-identical to the
  fault-free run (faults restricted to retried attempts).

A :class:`FaultPlan` is picklable and crosses the process boundary with
the job, so the worker itself decides (deterministically, from the
job's identity and attempt number) whether to misbehave.  Two modes:

* **scripted** — explicit :class:`Injection` entries matched on
  (point, property, window, attempt); the recovery tests use these to
  stage one precise failure and watch the supervisor heal it;
* **seeded random** — ``FaultPlan(seed=…, rate=…)`` draws per-job from
  an RNG keyed on (seed, point, property, window), firing only on the
  *first* attempt so every job still converges to its fault-free
  verdict after one retry.  This is the CI smoke matrix.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional

#: Named points in the worker execution path where faults can fire.
POINT_ENTER = "worker.enter"      #: on entry, before the design is built
POINT_SESSION = "worker.session"  #: session obtained, before the run
POINT_EXIT = "worker.exit"        #: run finished, before returning
INJECTION_POINTS = (POINT_ENTER, POINT_SESSION, POINT_EXIT)

#: Fault kinds.
CRASH = "crash"        #: kill the worker process abruptly (``os._exit``)
HANG = "hang"          #: block until the supervisor's job deadline kills us
SLOW = "slow"          #: sleep, then continue normally
RAISE = "raise"        #: raise :class:`FaultInjected`
MEMBLOAT = "membloat"  #: allocate ballast held for the rest of the job
FAULT_KINDS = (CRASH, HANG, SLOW, RAISE, MEMBLOAT)

#: Matches any window in an :class:`Injection` (``None`` is a real
#: window value — the full-range job — so it cannot be the wildcard).
ANY_WINDOW = "*"


class FaultInjected(RuntimeError):
    """The exception a ``raise`` fault (or an inline ``crash``) throws."""


@dataclass(frozen=True)
class Injection:
    """One scripted fault: where, what, and for which job attempts."""

    kind: str
    point: str = POINT_ENTER
    #: Property name to match; None matches every property.
    prop: Optional[str] = None
    #: Depth window to match; :data:`ANY_WINDOW` matches every window
    #: (including the full-range ``None`` window).
    window: object = ANY_WINDOW
    #: Attempt numbers (1-based) this injection fires on.  The default
    #: — first attempt only — keeps runs convergent: the retry is clean.
    attempts: tuple = (1,)
    #: Kind parameter: seconds for ``slow``/``hang``, MiB for
    #: ``membloat``; 0 selects the plan's default.
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {self.point!r}")

    def matches(self, point: str, prop: str, window, attempt: int) -> bool:
        return (self.point == point
                and (self.prop is None or self.prop == prop)
                and (self.window == ANY_WINDOW or self.window == window)
                and attempt in self.attempts)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of worker faults.

    ``injections`` are scripted faults; ``seed``/``rate`` add the random
    mode on top (either or both may be used).  The plan never holds
    state — every decision is a pure function of (point, property,
    window, attempt) — so it behaves identically no matter which worker
    process evaluates it or how jobs are scheduled.
    """

    injections: tuple = ()
    #: Random mode: master seed (None disables) and per-point fire rate.
    seed: Optional[int] = None
    rate: float = 0.0
    #: Kinds the random mode draws from.  ``hang`` is excluded by
    #: default: recovering from it needs a supervisor job deadline.
    kinds: tuple = (CRASH, RAISE, SLOW)
    #: Defaults for parameterised kinds.
    hang_s: float = 3600.0
    slow_s: float = 0.02
    bloat_mb: float = 64.0
    #: Exit code of ``crash`` faults (distinct from any Python exit).
    crash_code: int = 139

    def pick(self, point: str, prop: str, window,
             attempt: int) -> Optional[Injection]:
        """The injection (if any) that fires at this point of this job."""
        for inj in self.injections:
            if inj.matches(point, prop, window, attempt):
                return inj
        if self.seed is not None and self.rate > 0.0 and attempt == 1:
            # Keyed on the job's identity, not on scheduling order, so
            # the same plan fires the same faults under any pool size.
            rng = random.Random(f"{self.seed}|{point}|{prop}|{window!r}")
            if rng.random() < self.rate:
                return Injection(kind=rng.choice(self.kinds), point=point)
        return None

    def fire(self, point: str, prop: str, window, attempt: int,
             inline: bool = False):
        """Execute the fault scheduled here, if any.

        Returns ballast to keep alive for ``membloat`` (else None).
        ``inline`` softens process-level faults when the "worker" is the
        caller's own process (the service's jobs=1 path): ``crash`` and
        ``hang`` become a raised :class:`FaultInjected`, which the
        inline retry loop recovers from the same way.
        """
        inj = self.pick(point, prop, window, attempt)
        if inj is None:
            return None
        kind = inj.kind
        if inline and kind in (CRASH, HANG):
            raise FaultInjected(f"{kind} fault (inline) at {point}")
        if kind == CRASH:
            os._exit(self.crash_code)
        if kind == HANG:
            time.sleep(inj.param or self.hang_s)
            return None
        if kind == SLOW:
            time.sleep(inj.param or self.slow_s)
            return None
        if kind == RAISE:
            raise FaultInjected(f"injected fault at {point} "
                                f"(prop={prop}, window={window}, "
                                f"attempt={attempt})")
        if kind == MEMBLOAT:
            return bytearray(int((inj.param or self.bloat_mb) * 1024 * 1024))
        raise AssertionError(kind)  # pragma: no cover


@dataclass
class FaultProbe:
    """Mutable observation helper for tests: counts ``pick`` decisions.

    Wraps a plan to answer "how many faults would this plan fire over
    this job set?" without running anything — used by the seeded smoke
    matrix to assert the plan is actually injecting.
    """

    plan: FaultPlan
    fired: list = field(default_factory=list)

    def expected_faults(self, jobs, points=INJECTION_POINTS) -> list:
        """(point, prop, window, kind) for every first-attempt fault."""
        self.fired = []
        for job in jobs:
            for point in points:
                inj = self.plan.pick(point, job.property_name, job.window, 1)
                if inj is not None:
                    self.fired.append((point, job.property_name,
                                       job.window, inj.kind))
                    break  # a crash/raise at one point masks later ones
        return self.fired
