"""Expression rewriting between designs.

Used by the explicit-memory expansion (memread leaves become mux trees
over word latches) and by invariant-based memory abstraction (memread
leaves become constrained free inputs, Section 5 "Industry Design II"
flow).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.design.netlist import Design, Expr


class ExprRewriter:
    """Rebuilds expressions of a source design inside a target design.

    Leaves are mapped as follows: constants are re-made; inputs and
    latches are looked up *by name* in the target design (they must have
    been declared already); ``memread`` leaves are resolved through the
    ``memread_map`` — populate it before rewriting anything that reads
    memory, or pass a fallback factory.
    """

    def __init__(self, source: Design, target: Design,
                 memread_fallback: Optional[Callable[[Expr], Expr]] = None,
                 latch_rename: Optional[Callable[[str], str]] = None,
                 input_rename: Optional[Callable[[str], str]] = None) -> None:
        self.source = source
        self.target = target
        self.memread_map: dict[tuple[str, int], Expr] = {}
        self._memread_fallback = memread_fallback
        #: Optional name translation applied before the target lookup —
        #: product/miter construction prefixes latch names per side.
        self._latch_rename = latch_rename or (lambda n: n)
        self._input_rename = input_rename or (lambda n: n)
        self._cache: dict[int, Expr] = {}

    def rewrite(self, expr: Expr) -> Expr:
        """Rewrite ``expr`` (from the source design) into the target design."""
        cache = self._cache
        stack = [expr]
        while stack:
            e = stack[-1]
            if e._id in cache:
                stack.pop()
                continue
            missing = [a for a in e.args if a._id not in cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            cache[e._id] = self._rebuild(e)
        return cache[expr._id]

    def _rebuild(self, e: Expr) -> Expr:
        t = self.target
        if e.kind == "const":
            return t.const(e.payload, e.width)
        if e.kind == "input":
            name = self._input_rename(e.payload)
            inp = t.inputs.get(name)
            if inp is None:
                raise KeyError(f"input {name!r} missing in target design")
            return inp.expr
        if e.kind == "latch":
            name = self._latch_rename(e.payload)
            latch = t.latches.get(name)
            if latch is None:
                raise KeyError(f"latch {name!r} missing in target design")
            return latch.expr
        if e.kind == "memread":
            mapped = self.memread_map.get(e.payload)
            if mapped is None and self._memread_fallback is not None:
                mapped = self._memread_fallback(e)
                self.memread_map[e.payload] = mapped
            if mapped is None:
                raise KeyError(f"memread {e.payload} has no mapping")
            if mapped.width != e.width:
                raise ValueError("memread mapping width mismatch")
            return mapped
        args = tuple(self._cache[a._id] for a in e.args)
        return t._mk(e.kind, e.width, args, e.payload)
