"""Synthesizable Verilog-2001 export for designs.

The paper's case studies were "implemented using Verilog HDL"; this
exporter closes the loop — any :class:`repro.design.Design` (including
its embedded memories) can be written out as a self-contained Verilog
module for use with commercial flows, simulators or other model
checkers.

Mapping:

* primary inputs -> module inputs; one ``clk`` and one ``rst`` port are
  added;
* latches -> ``reg`` vectors updated on ``posedge clk``, reset to their
  declared init (arbitrary-init latches are left unreset);
* memories -> ``reg`` arrays with one synchronous write block per write
  port (highest port index last, preserving the EMM priority) and
  combinational read assigns gated by the read enable;
* properties -> 1-bit outputs, plus immediate assertions inside an
  ``ifdef FORMAL`` block so the file drops into SymbiYosys-style flows.

Expressions are emitted as a hash-consed wire per node, so the output
size is linear in the expression DAG.
"""

from __future__ import annotations

from typing import TextIO

from repro.design.netlist import Design, Expr

_RESERVED = {"module", "input", "output", "reg", "wire", "assign", "always",
             "begin", "end", "if", "else", "case", "endcase", "endmodule",
             "initial", "integer", "signed", "clk", "rst"}


def _ident(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not out or out[0].isdigit() or out in _RESERVED:
        out = f"sig_{out}"
    return out


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


class _WireNamer:
    """Emits one wire definition per distinct expression node."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self.names: dict[int, str] = {}
        self.defs: list[str] = []
        self._count = 0

    def ref(self, expr: Expr) -> str:
        stack = [expr]
        while stack:
            e = stack[-1]
            if e._id in self.names:
                stack.pop()
                continue
            missing = [a for a in e.args if a._id not in self.names]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            self.names[e._id] = self._emit(e)
        return self.names[expr._id]

    def _emit(self, e: Expr) -> str:
        kind = e.kind
        if kind == "const":
            return f"{e.width}'d{e.payload}"
        if kind == "input":
            return _ident(e.payload)
        if kind == "latch":
            return _ident(e.payload)
        if kind == "memread":
            mem, port = e.payload
            return f"{_ident(mem)}_rd{port}"
        args = [self.names[a._id] for a in e.args]
        body = self._body(e, args)
        name = f"w{self._count}"
        self._count += 1
        self.defs.append(
            f"  wire {_range(e.width)}{name} = {body};")
        return name

    def _body(self, e: Expr, a: list[str]) -> str:
        kind = e.kind
        if kind == "not":
            return f"~{a[0]}"
        if kind == "and":
            return f"{a[0]} & {a[1]}"
        if kind == "or":
            return f"{a[0]} | {a[1]}"
        if kind == "xor":
            return f"{a[0]} ^ {a[1]}"
        if kind == "add":
            return f"{a[0]} + {a[1]}"
        if kind == "sub":
            return f"{a[0]} - {a[1]}"
        if kind == "eq":
            return f"{a[0]} == {a[1]}"
        if kind == "ult":
            return f"{a[0]} < {a[1]}"
        if kind == "mux":
            return f"{a[0]} ? {a[1]} : {a[2]}"
        if kind == "slice":
            lo, hi = e.payload
            if hi - lo == e.args[0].width:
                return a[0]
            if hi - lo == 1:
                return f"{a[0]}[{lo}]"
            return f"{a[0]}[{hi - 1}:{lo}]"
        if kind == "zext":
            pad = e.width - e.args[0].width
            return f"{{{pad}'d0, {a[0]}}}"
        if kind == "concat":
            return f"{{{a[1]}, {a[0]}}}"  # verilog: high part first
        raise ValueError(f"unknown expression kind {kind!r}")


def write_verilog(out: TextIO, design: Design,
                  module_name: str | None = None) -> None:
    """Write the design as one synthesizable Verilog module."""
    design.validate()
    name = _ident(module_name or design.name)
    namer = _WireNamer(design)

    # Pre-walk everything so wire definitions land before their uses.
    latch_next = {n: namer.ref(lit.next) for n, lit in design.latches.items()}
    port_exprs: dict = {}
    for mem in design.memories.values():
        for port in mem.read_ports:
            port_exprs[("r", mem.name, port.index)] = (
                namer.ref(port.addr), namer.ref(port.en))
        for port in mem.write_ports:
            port_exprs[("w", mem.name, port.index)] = (
                namer.ref(port.addr), namer.ref(port.en),
                namer.ref(port.data))
    prop_refs = {n: namer.ref(p.expr) for n, p in design.properties.items()}

    ports = ["clk", "rst"]
    ports += [_ident(i.name) for i in design.inputs.values()]
    ports += [f"prop_{_ident(n)}" for n in design.properties]
    out.write(f"// generated from design {design.name!r} by repro.design.verilog\n")
    out.write(f"module {name} (\n")
    out.write(",\n".join(f"  {p}" for p in ports))
    out.write("\n);\n")
    out.write("  input clk;\n  input rst;\n")
    for inp in design.inputs.values():
        out.write(f"  input {_range(inp.width)}{_ident(inp.name)};\n")
    for pname in design.properties:
        out.write(f"  output prop_{_ident(pname)};\n")
    out.write("\n")
    for latch in design.latches.values():
        out.write(f"  reg {_range(latch.width)}{_ident(latch.name)};\n")
    for mem in design.memories.values():
        out.write(f"  reg {_range(mem.data_width)}{_ident(mem.name)} "
                  f"[0:{mem.num_words - 1}];\n")
    out.write("\n")
    for line in namer.defs:
        out.write(line + "\n")
    out.write("\n")

    # Declared memory contents.  Known-init memories list every word (the
    # parser reconstructs the exact initial state from the initial block);
    # arbitrary-default memories list only their ROM overrides.  Very
    # large known-init memories fall back to overrides-only with a
    # warning comment — their uniform default is not expressible in the
    # roundtrippable subset.
    _INIT_DUMP_CAP = 1024
    init_dump: dict[str, dict[int, int]] = {}
    for mem in design.memories.values():
        if mem.init is not None and mem.num_words <= _INIT_DUMP_CAP:
            init_dump[mem.name] = {a: mem.initial_word(a)
                                   for a in range(mem.num_words)}
        elif mem.init_words:
            if mem.init is not None:
                out.write(f"  // NOTE: {_ident(mem.name)} has a uniform "
                          f"init of {mem.init} too large to dump; the "
                          "initial block below lists overrides only\n")
            init_dump[mem.name] = dict(mem.init_words)
    if any(init_dump.values()):
        out.write("  initial begin\n")
        for name, words in init_dump.items():
            for addr in sorted(words):
                out.write(f"    {_ident(name)}[{addr}] = "
                          f"{design.memories[name].data_width}'d"
                          f"{words[addr]};\n")
        out.write("  end\n\n")

    # Memory read ports: combinational, enable-gated (reads while the
    # enable is low return zero, matching the reference simulator).
    for mem in design.memories.values():
        for port in mem.read_ports:
            addr, en = port_exprs[("r", mem.name, port.index)]
            rd = f"{_ident(mem.name)}_rd{port.index}"
            out.write(f"  wire {_range(mem.data_width)}{rd} = "
                      f"{en} ? {_ident(mem.name)}[{addr}] : "
                      f"{mem.data_width}'d0;\n")
    out.write("\n")

    # State updates.
    out.write("  always @(posedge clk) begin\n")
    out.write("    if (rst) begin\n")
    for latch in design.latches.values():
        if latch.init is not None:
            out.write(f"      {_ident(latch.name)} <= "
                      f"{latch.width}'d{latch.init};\n")
    out.write("    end else begin\n")
    for lname, ref in latch_next.items():
        out.write(f"      {_ident(lname)} <= {ref};\n")
    for mem in design.memories.values():
        for port in mem.write_ports:  # ascending order: later ports win
            addr, en, data = port_exprs[("w", mem.name, port.index)]
            out.write(f"      if ({en}) {_ident(mem.name)}[{addr}] "
                      f"<= {data};\n")
    out.write("    end\n  end\n\n")

    for pname, ref in prop_refs.items():
        out.write(f"  assign prop_{_ident(pname)} = {ref};\n")
    out.write("\n`ifdef FORMAL\n  always @(posedge clk) begin\n")
    for pname, prop in design.properties.items():
        if prop.kind == "invariant":
            out.write(f"    if (!rst) assert (prop_{_ident(pname)});\n")
        else:
            out.write(f"    if (!rst) cover (prop_{_ident(pname)});\n")
    out.write("  end\n`endif\n")
    out.write("endmodule\n")
