"""Word-level netlist IR: expressions, latches, memories, properties.

Expressions are immutable and hash-consed per design, so structurally
identical sub-expressions are shared; the BMC unroller and the simulator
both exploit this for caching.  Widths are checked at construction time —
a malformed design fails fast, not inside the SAT solver.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional, Union

ExprLike = Union["Expr", int]

#: Expression kinds with their arities (args are child expressions).
_BINARY_SAME_WIDTH = {"and", "or", "xor", "add", "sub"}
_COMPARE = {"eq", "ult"}


class Expr:
    """A hash-consed word-level expression node.

    Supports Python operators for the common cases (``+ - & | ^ ~``,
    ``expr[i]`` / ``expr[lo:hi]`` bit slicing) and named methods for
    comparisons (``eq``, ``ne``, ``ult`` …) to avoid hijacking ``__eq__``.
    """

    __slots__ = ("design", "kind", "width", "args", "payload", "_id")

    def __init__(self, design: "Design", kind: str, width: int,
                 args: tuple["Expr", ...], payload, _id: int) -> None:
        self.design = design
        self.kind = kind
        self.width = width
        self.args = args
        self.payload = payload
        self._id = _id

    # -- operator sugar -------------------------------------------------

    def _coerce(self, other: ExprLike) -> "Expr":
        return self.design.coerce(other, self.width)

    def __add__(self, other: ExprLike) -> "Expr":
        return self.design._mk("add", self.width, (self, self._coerce(other)))

    def __sub__(self, other: ExprLike) -> "Expr":
        return self.design._mk("sub", self.width, (self, self._coerce(other)))

    def __and__(self, other: ExprLike) -> "Expr":
        return self.design._mk("and", self.width, (self, self._coerce(other)))

    def __or__(self, other: ExprLike) -> "Expr":
        return self.design._mk("or", self.width, (self, self._coerce(other)))

    def __xor__(self, other: ExprLike) -> "Expr":
        return self.design._mk("xor", self.width, (self, self._coerce(other)))

    def __invert__(self) -> "Expr":
        return self.design._mk("not", self.width, (self,))

    def __getitem__(self, key) -> "Expr":
        if isinstance(key, slice):
            lo = key.start or 0
            hi = key.stop if key.stop is not None else self.width
        else:
            lo, hi = key, key + 1
        if not 0 <= lo < hi <= self.width:
            raise IndexError(f"slice [{lo}:{hi}] out of range for width {self.width}")
        return self.design._mk("slice", hi - lo, (self,), (lo, hi))

    # -- comparisons (explicit names; __eq__ stays identity) -----------

    def eq(self, other: ExprLike) -> "Expr":
        return self.design._mk("eq", 1, (self, self._coerce(other)))

    def ne(self, other: ExprLike) -> "Expr":
        return ~self.eq(other)

    def ult(self, other: ExprLike) -> "Expr":
        return self.design._mk("ult", 1, (self, self._coerce(other)))

    def ule(self, other: ExprLike) -> "Expr":
        return ~self._coerce(other).ult(self)

    def ugt(self, other: ExprLike) -> "Expr":
        return self._coerce(other).ult(self)

    def uge(self, other: ExprLike) -> "Expr":
        return ~self.ult(other)

    def is_zero(self) -> "Expr":
        return self.eq(0)

    def nonzero(self) -> "Expr":
        return ~self.eq(0)

    # -- structure ------------------------------------------------------

    def ite(self, then: ExprLike, els: ExprLike) -> "Expr":
        """``self ? then : els``; ``self`` must be 1-bit.

        Bare ints are widened to the other arm's width (at least one arm
        must be an expression).
        """
        if self.width != 1:
            raise ValueError("ite selector must be 1 bit wide")
        d = self.design
        if isinstance(then, Expr):
            t = then
            e = d.coerce(els, t.width)
        elif isinstance(els, Expr):
            e = els
            t = d.coerce(then, e.width)
        else:
            raise ValueError("ite: cannot infer width from two bare ints")
        if t.width != e.width:
            raise ValueError(f"ite arm width mismatch {t.width} vs {e.width}")
        return d._mk("mux", t.width, (self, t, e))

    def zext(self, width: int) -> "Expr":
        if width < self.width:
            raise ValueError("zext target narrower than source")
        if width == self.width:
            return self
        return self.design._mk("zext", width, (self,))

    def concat(self, high: "Expr") -> "Expr":
        """``high`` becomes the upper bits; self stays low."""
        return self.design._mk("concat", self.width + high.width, (self, high))

    def implies(self, other: ExprLike) -> "Expr":
        if self.width != 1:
            raise ValueError("implies operands must be 1 bit wide")
        return ~self | self._coerce(other)

    def __repr__(self) -> str:
        if self.kind == "const":
            return f"<{self.payload}:w{self.width}>"
        if self.kind in ("input", "latch"):
            return f"<{self.kind} {self.payload}:w{self.width}>"
        if self.kind == "memread":
            return f"<rd {self.payload[0]}.r{self.payload[1]}:w{self.width}>"
        return f"<{self.kind}:w{self.width}#{self._id}>"


class Input:
    """A primary input word."""

    def __init__(self, name: str, width: int, expr: Expr) -> None:
        self.name = name
        self.width = width
        self.expr = expr


class Latch:
    """A register word with an initial value and a next-state function.

    ``init=None`` means the initial value is arbitrary (unconstrained),
    which the proof engines treat soundly as a free symbolic word.
    """

    def __init__(self, design: "Design", name: str, width: int,
                 init: Optional[int]) -> None:
        self.design = design
        self.name = name
        self.width = width
        if init is not None:
            init &= (1 << width) - 1
        self.init = init
        self.expr = design._mk("latch", width, (), name)
        self._next: Optional[Expr] = None

    @property
    def next(self) -> Optional[Expr]:
        return self._next

    @next.setter
    def next(self, value: ExprLike) -> None:
        expr = self.design.coerce(value, self.width)
        if expr.width != self.width:
            raise ValueError(
                f"latch {self.name}: next width {expr.width} != {self.width}")
        self._next = expr


class ReadPort:
    """A memory read port: drives Addr/RE, exposes the RD word."""

    def __init__(self, design: "Design", mem: "Memory", index: int) -> None:
        self.memory = mem
        self.index = index
        self.addr: Optional[Expr] = None
        self.en: Optional[Expr] = None
        self.data = design._mk("memread", mem.data_width, (), (mem.name, index))

    def connect(self, addr: ExprLike, en: ExprLike = 1) -> Expr:
        """Wire the address/read-enable; returns the read-data expression."""
        d = self.memory.design
        self.addr = d.coerce(addr, self.memory.addr_width)
        self.en = d.coerce(en, 1)
        return self.data


class WritePort:
    """A memory write port: drives Addr/WD/WE."""

    def __init__(self, mem: "Memory", index: int) -> None:
        self.memory = mem
        self.index = index
        self.addr: Optional[Expr] = None
        self.en: Optional[Expr] = None
        self.data: Optional[Expr] = None

    def connect(self, addr: ExprLike, data: ExprLike, en: ExprLike = 1) -> None:
        d = self.memory.design
        self.addr = d.coerce(addr, self.memory.addr_width)
        self.data = d.coerce(data, self.memory.data_width)
        self.en = d.coerce(en, 1)


class Memory:
    """An embedded memory module with R read and W write ports.

    ``init`` is a uniform initial value for every location, or ``None``
    for an *arbitrary* initial state (Section 4.2 of the paper).
    ``init_words`` overrides individual addresses — the ROM/program case:
    listed locations start with the given words, the rest fall back to
    ``init`` (or stay arbitrary when ``init`` is None).

    When a location is written by several ports in the same cycle, the
    highest port index wins — matching the priority order of the EMM
    exclusivity chain in equation (4); well-formed designs avoid such
    data races (the paper assumes their absence).
    """

    def __init__(self, design: "Design", name: str, addr_width: int,
                 data_width: int, read_ports: int, write_ports: int,
                 init: Optional[int],
                 init_words: Optional[Mapping[int, int]] = None) -> None:
        if read_ports < 1 or write_ports < 1:
            raise ValueError("memories need at least one read and one write port")
        self.design = design
        self.name = name
        self.addr_width = addr_width
        self.data_width = data_width
        data_mask = (1 << data_width) - 1
        if init is not None:
            init &= data_mask
        self.init = init
        self.init_words: dict[int, int] = {}
        for addr, value in dict(init_words or {}).items():
            if not 0 <= addr < (1 << addr_width):
                raise ValueError(
                    f"init_words address {addr} out of range for "
                    f"addr_width {addr_width}")
            self.init_words[addr] = value & data_mask
        self.read_ports = [ReadPort(design, self, i) for i in range(read_ports)]
        self.write_ports = [WritePort(self, i) for i in range(write_ports)]

    def initial_word(self, addr: int) -> Optional[int]:
        """Initial value at ``addr``; None when it is arbitrary."""
        got = self.init_words.get(addr)
        if got is not None:
            return got
        return self.init

    @property
    def num_read_ports(self) -> int:
        return len(self.read_ports)

    @property
    def num_write_ports(self) -> int:
        return len(self.write_ports)

    def read(self, index: int = 0) -> ReadPort:
        return self.read_ports[index]

    def write(self, index: int = 0) -> WritePort:
        return self.write_ports[index]

    @property
    def num_words(self) -> int:
        return 1 << self.addr_width

    @property
    def num_bits(self) -> int:
        """State bits an explicit model of this memory would add."""
        return self.num_words * self.data_width


class Property:
    """A named verification obligation.

    ``kind`` is ``"invariant"`` (expr must hold in all reachable states;
    result is PROOF or a counterexample) or ``"reach"`` (find a witness
    reaching expr; result is a witness trace or an unreachability proof).
    """

    def __init__(self, name: str, kind: str, expr: Expr) -> None:
        if kind not in ("invariant", "reach"):
            raise ValueError(f"unknown property kind {kind!r}")
        if expr.width != 1:
            raise ValueError("property expression must be 1 bit wide")
        self.name = name
        self.kind = kind
        self.expr = expr


class Design:
    """A sequential word-level design with embedded memories."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: dict[str, Input] = {}
        self.latches: dict[str, Latch] = {}
        self.memories: dict[str, Memory] = {}
        self.properties: dict[str, Property] = {}
        self._cache: dict[tuple, Expr] = {}
        self._next_id = 0

    # -- expression construction ----------------------------------------

    def _mk(self, kind: str, width: int, args: tuple[Expr, ...],
            payload=None) -> Expr:
        for a in args:
            if a.design is not self:
                raise ValueError("expression belongs to a different design")
        if kind in _BINARY_SAME_WIDTH or kind in _COMPARE:
            if args[0].width != args[1].width:
                raise ValueError(
                    f"{kind}: width mismatch {args[0].width} vs {args[1].width}")
        key = (kind, tuple(a._id for a in args), payload, width)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        expr = Expr(self, kind, width, args, payload, self._next_id)
        self._next_id += 1
        self._cache[key] = expr
        return expr

    def const(self, value: int, width: int) -> Expr:
        """A constant word (value is masked to ``width`` bits)."""
        value &= (1 << width) - 1
        return self._mk("const", width, (), value)

    def coerce(self, value: ExprLike, width: int) -> Expr:
        """Accept an Expr of matching width or an in-range int (made const).

        Unlike :meth:`const`, coercion refuses ints that do not fit in
        ``width`` bits — silently masking ``expr.ult(8)`` on a 3-bit word
        to ``expr.ult(0)`` has burned enough people.
        """
        if isinstance(value, Expr):
            if value.width != width:
                raise ValueError(f"expected width {width}, got {value.width}")
            return value
        value = int(value)
        if not 0 <= value < (1 << width):
            raise ValueError(f"constant {value} does not fit in {width} bits")
        return self.const(value, width)

    def coerce_any(self, value: ExprLike, width: Optional[int] = None) -> Expr:
        if isinstance(value, Expr):
            return value
        if width is None:
            raise ValueError("cannot infer width for bare int")
        return self.const(int(value), width)

    def input(self, name: str, width: int) -> Expr:
        """Declare a primary input; returns its expression."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        expr = self._mk("input", width, (), name)
        self.inputs[name] = Input(name, width, expr)
        return expr

    def latch(self, name: str, width: int, init: Optional[int] = 0) -> Latch:
        """Declare a latch word; set ``.next`` before verification."""
        if name in self.latches:
            raise ValueError(f"duplicate latch {name!r}")
        latch = Latch(self, name, width, init)
        self.latches[name] = latch
        return latch

    def memory(self, name: str, addr_width: int, data_width: int,
               read_ports: int = 1, write_ports: int = 1,
               init: Optional[int] = 0,
               init_words: Optional[Mapping[int, int]] = None) -> Memory:
        """Declare an embedded memory module.

        ``init_words`` seeds individual addresses (program ROMs, lookup
        tables); other locations start at ``init``, or arbitrary when
        ``init`` is None.
        """
        if name in self.memories:
            raise ValueError(f"duplicate memory {name!r}")
        mem = Memory(self, name, addr_width, data_width,
                     read_ports, write_ports, init, init_words)
        self.memories[name] = mem
        return mem

    def mux(self, sel: ExprLike, then: ExprLike, els: ExprLike) -> Expr:
        sel_e = self.coerce(sel, 1)
        return sel_e.ite(then, els)

    def and_many(self, exprs: Iterable[ExprLike]) -> Expr:
        out = self.const(1, 1)
        for e in exprs:
            out = out & self.coerce(e, 1)
        return out

    def or_many(self, exprs: Iterable[ExprLike]) -> Expr:
        out = self.const(0, 1)
        for e in exprs:
            out = out | self.coerce(e, 1)
        return out

    # -- properties -------------------------------------------------------

    def invariant(self, name: str, expr: Expr) -> Property:
        """Declare a safety property: ``expr`` holds in every reachable state."""
        return self._add_property(Property(name, "invariant", expr))

    def reach(self, name: str, expr: Expr) -> Property:
        """Declare a reachability target: find a state where ``expr`` holds."""
        return self._add_property(Property(name, "reach", expr))

    def _add_property(self, prop: Property) -> Property:
        if prop.name in self.properties:
            raise ValueError(f"duplicate property {prop.name!r}")
        if prop.expr.design is not self:
            raise ValueError("property expression belongs to another design")
        self.properties[prop.name] = prop
        return prop

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check the design is closed and well-formed; raises on problems."""
        for latch in self.latches.values():
            if latch.next is None:
                raise ValueError(f"latch {latch.name!r} has no next-state function")
        for mem in self.memories.values():
            for port in mem.read_ports:
                if port.addr is None or port.en is None:
                    raise ValueError(
                        f"memory {mem.name!r} read port {port.index} unconnected")
            for port in mem.write_ports:
                if port.addr is None or port.en is None or port.data is None:
                    raise ValueError(
                        f"memory {mem.name!r} write port {port.index} unconnected")
        self.port_evaluation_order()  # raises on combinational port cycles

    def port_evaluation_order(self) -> list[tuple[str, int]]:
        """Topological order for same-cycle read-port evaluation.

        Read port B may use read port A's data in its address (chained
        indirection); cycles through memory ports are rejected.
        Returns ``[(mem_name, port_index), ...]``.
        """
        ports = [(m.name, p.index) for m in self.memories.values()
                 for p in m.read_ports]
        deps: dict[tuple[str, int], set[tuple[str, int]]] = {p: set() for p in ports}
        for mem in self.memories.values():
            for port in mem.read_ports:
                for e in (port.addr, port.en):
                    if e is not None:
                        deps[(mem.name, port.index)] |= memread_support(e)
        order: list[tuple[str, int]] = []
        state: dict[tuple[str, int], int] = {}

        def visit(p: tuple[str, int]) -> None:
            st = state.get(p, 0)
            if st == 1:
                raise ValueError(f"combinational cycle through memory port {p}")
            if st == 2:
                return
            state[p] = 1
            for q in deps[p]:
                visit(q)
            state[p] = 2
            order.append(p)

        for p in ports:
            visit(p)
        return order

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the design's semantics.

        Covers inputs, latches (width/init/next), memories (geometry,
        init, init words, port wiring) and properties, with expressions
        hashed structurally — so the digest is independent of declaration
        order, construction history and process identity (unlike
        ``id()``-based keys), but changes whenever any semantic detail
        does.  This is the session-cache key
        (:class:`repro.bmc.session.SessionCache`): equal fingerprints
        mean the same verification problem.
        """
        # Per-node digests, memoized on the hash-consed node id: shared
        # sub-DAGs are hashed once, so the walk is linear in unique nodes
        # rather than exponential in sharing depth.
        memo: dict[int, str] = {}

        def digest(e: Optional[Expr]) -> str:
            if e is None:
                return "-"
            if e._id not in memo:
                stack = [e]
                while stack:
                    n = stack[-1]
                    if n._id in memo:
                        stack.pop()
                        continue
                    pending = [a for a in n.args if a._id not in memo]
                    if pending:
                        stack.extend(pending)
                        continue
                    stack.pop()
                    h = hashlib.sha256(repr(
                        (n.kind, n.width, n.payload,
                         tuple(memo[a._id] for a in n.args))).encode())
                    memo[n._id] = h.hexdigest()
            return memo[e._id]

        parts = [f"design {self.name}"]
        for name in sorted(self.inputs):
            parts.append(f"input {name} {self.inputs[name].width}")
        for name in sorted(self.latches):
            latch = self.latches[name]
            parts.append(f"latch {name} {latch.width} {latch.init} "
                         f"{digest(latch.next)}")
        for name in sorted(self.memories):
            mem = self.memories[name]
            words = ",".join(f"{a}:{v}"
                             for a, v in sorted(mem.init_words.items()))
            parts.append(f"memory {name} {mem.addr_width} {mem.data_width} "
                         f"{mem.init} [{words}]")
            for port in mem.read_ports:
                parts.append(f"  r{port.index} {digest(port.addr)} "
                             f"{digest(port.en)}")
            for port in mem.write_ports:
                parts.append(f"  w{port.index} {digest(port.addr)} "
                             f"{digest(port.data)} {digest(port.en)}")
        for name in sorted(self.properties):
            prop = self.properties[name]
            parts.append(f"property {name} {prop.kind} {digest(prop.expr)}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    # -- metrics -----------------------------------------------------------

    def num_latch_bits(self) -> int:
        """Latch bits excluding memory registers (the paper's 'FF' count)."""
        return sum(lit.width for lit in self.latches.values())

    def num_memory_bits(self) -> int:
        return sum(m.num_bits for m in self.memories.values())

    def stats(self) -> dict:
        return {
            "inputs": sum(i.width for i in self.inputs.values()),
            "latch_bits": self.num_latch_bits(),
            "memories": len(self.memories),
            "memory_bits": self.num_memory_bits(),
            "properties": len(self.properties),
        }


def memread_support(expr: Expr) -> set[tuple[str, int]]:
    """All ``(memory, read_port)`` pairs an expression depends on."""
    out: set[tuple[str, int]] = set()
    seen: set[int] = set()
    stack = [expr]
    while stack:
        e = stack.pop()
        if e._id in seen:
            continue
        seen.add(e._id)
        if e.kind == "memread":
            out.add(e.payload)
        stack.extend(e.args)
    return out
