"""Word-level sequential design IR (substrate S3).

A :class:`Design` is the paper's *Main module* plus zero or more embedded
*MEM modules*.  Designs are built from hash-consed word-level expressions
(:class:`Expr`), registered state (:class:`Latch`), primary inputs and
:class:`Memory` modules whose read/write ports expose the five memory
interface signals of Section 2.3: Addr, WD, RD, WE and RE.

Two lowerings exist for every design:

* :func:`repro.design.explicit.expand_memories` — the *Explicit Modeling*
  baseline: every memory becomes ``2**AW`` data-word latches plus read
  muxes and write decoders;
* the EMM path — the BMC unroller keeps the interface signals and lets
  :mod:`repro.emm` constrain the read-data words at every depth.
"""

from repro.design.netlist import Design, Expr, Latch, Memory, Input, ReadPort, WritePort, Property
from repro.design.explicit import expand_memories
from repro.design.cone import latch_support, memory_control_latches
from repro.design.equiv import build_miter, check_equivalence
from repro.design.verilog import write_verilog
from repro.design.verilog_parser import parse_verilog, VerilogError

__all__ = [
    "Design", "Expr", "Latch", "Memory", "Input", "ReadPort", "WritePort",
    "Property", "expand_memories", "latch_support", "memory_control_latches",
    "build_miter", "check_equivalence", "write_verilog", "parse_verilog",
    "VerilogError",
]
