"""Explicit memory modeling — the paper's baseline.

Every memory module becomes ``2**AW`` word latches; each read port turns
into a balanced mux tree selected by the (rewritten) address, and each
word latch gets a write decoder chaining the write ports in index order
(highest port index wins, matching the EMM priority of equation (4)).

This is the model the paper calls *Explicit Modeling*: it preserves the
exact memory semantics but adds ``2**AW * DW`` state bits per memory,
which is what makes BMC blow up and motivates EMM.
"""

from __future__ import annotations

from repro.design.netlist import Design, Expr
from repro.design.rewrite import ExprRewriter


def word_latch_name(mem_name: str, address: int) -> str:
    """Naming scheme for the expanded word latches."""
    return f"{mem_name}::w{address}"


def expand_memories(design: Design) -> Design:
    """Return an equivalent design with all memories explicitly expanded."""
    design.validate()
    out = Design(f"{design.name}__explicit")
    for inp in design.inputs.values():
        out.input(inp.name, inp.width)
    for latch in design.latches.values():
        out.latch(latch.name, latch.width, latch.init)
    word_latches: dict[str, list] = {}
    for mem in design.memories.values():
        words = [
            out.latch(word_latch_name(mem.name, a), mem.data_width,
                      mem.initial_word(a))
            for a in range(mem.num_words)
        ]
        word_latches[mem.name] = words

    rw = ExprRewriter(design, out)

    # Resolve read ports in dependency order so chained reads (port B's
    # address uses port A's data) rewrite correctly.
    for mem_name, port_index in design.port_evaluation_order():
        mem = design.memories[mem_name]
        port = mem.read_ports[port_index]
        addr = rw.rewrite(port.addr)
        data = _mux_tree(out, [w.expr for w in word_latches[mem_name]], addr)
        rw.memread_map[(mem_name, port_index)] = data

    # Word latch next-state: write decoders chained over write ports.
    for mem in design.memories.values():
        writes = [
            (rw.rewrite(p.addr), rw.rewrite(p.en), rw.rewrite(p.data))
            for p in mem.write_ports
        ]
        for a, word in enumerate(word_latches[mem.name]):
            nxt = word.expr
            for addr, en, data in writes:  # later ports override earlier
                hit = en & addr.eq(a)
                nxt = hit.ite(data, nxt)
            word.next = nxt

    for latch in design.latches.values():
        out.latches[latch.name].next = rw.rewrite(latch.next)

    for prop in design.properties.values():
        expr = rw.rewrite(prop.expr)
        if prop.kind == "invariant":
            out.invariant(prop.name, expr)
        else:
            out.reach(prop.name, expr)
    out.validate()
    return out


def _mux_tree(design: Design, words: list[Expr], addr: Expr) -> Expr:
    """Balanced mux tree over ``words`` indexed by ``addr`` (LSB first)."""

    def build(lo: int, span: list[Expr], bit: int) -> Expr:
        if len(span) == 1:
            return span[0]
        half = len(span) // 2
        low = build(lo, span[:half], bit + 1)
        high = build(lo + half, span[half:], bit + 1)
        return addr[len_addr - 1 - bit].ite(high, low)

    len_addr = addr.width
    if len(words) != (1 << len_addr):
        raise ValueError("word count must be 2**addr_width")
    return build(0, words, 0)
