"""Structural cone analysis.

``memory_control_latches`` identifies the latches driving a memory's
interface signals (Addr/WD/WE/RE) — the paper's criterion (Section 4.3)
for deciding from a proof-based abstraction whether a memory module can be
dropped: *"checking whether a latch corresponding to the control logic for
that memory module (the logic driving the memory interface signals) is in
the set LRi"*.
"""

from __future__ import annotations

from typing import Iterable

from repro.design.netlist import Design, Expr, Memory


def latch_support(exprs: Iterable[Expr] | Expr) -> set[str]:
    """Latch names in the combinational fanin of the expressions.

    Traversal stops at memory read-data leaves: the value produced *by* a
    memory is data, not control, so it does not contribute control latches.
    """
    if isinstance(exprs, Expr):
        exprs = [exprs]
    out: set[str] = set()
    seen: set[int] = set()
    stack = list(exprs)
    while stack:
        e = stack.pop()
        if e._id in seen:
            continue
        seen.add(e._id)
        if e.kind == "latch":
            out.add(e.payload)
        stack.extend(e.args)
    return out


def memory_control_latches(design: Design, mem: Memory | str) -> set[str]:
    """Latches in the combinational fanin of a memory's interface signals."""
    if isinstance(mem, str):
        mem = design.memories[mem]
    exprs: list[Expr] = []
    for port in mem.read_ports:
        if port.addr is not None:
            exprs.append(port.addr)
        if port.en is not None:
            exprs.append(port.en)
    for port in mem.write_ports:
        for e in (port.addr, port.en, port.data):
            if e is not None:
                exprs.append(e)
    return latch_support(exprs)


def property_cone_latches(design: Design, prop_name: str) -> set[str]:
    """Transitive latch cone of a property (through next-state functions)."""
    frontier = latch_support(design.properties[prop_name].expr)
    cone: set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in cone:
            continue
        cone.add(name)
        nxt = design.latches[name].next
        if nxt is not None:
            frontier |= latch_support(nxt) - cone
    return cone
