"""Miter construction and (bounded) sequential equivalence checking.

A *miter* runs two designs lock-step on shared primary inputs and
asserts that chosen output expressions stay pairwise equal.  On top of
the EMM engine this gives sequential equivalence checking for designs
*with embedded memories* — each side's memories are modeled by EMM
constraints, never expanded — which is also how the test-suite
cross-validates EMM against the explicit expansion: the miter of a
design and ``expand_memories(design)`` must be unfalsifiable.

Arbitrary-initial-state memories need care: by default each side's
memory starts with its *own* arbitrary contents, so a miter of two
sorters over uninitialized arrays is trivially falsifiable.  Passing
``share_arbitrary_init=True`` declares same-named arbitrary-init
memories to hold the *same* unknown initial contents, implemented by
extending the paper's equation (6) consistency constraints across the
pair (see ``BmcOptions.shared_init_memories``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.design.netlist import Design, Expr
from repro.design.rewrite import ExprRewriter

#: Separator used when prefixing per-side state names inside the miter.
SIDE_SEP = "::"


class MiterSide:
    """One copied design inside the miter, with its rewriter."""

    def __init__(self, product: Design, source: Design, prefix: str) -> None:
        self.source = source
        self.prefix = prefix
        self.rewriter = ExprRewriter(
            source, product,
            latch_rename=lambda n: f"{prefix}{SIDE_SEP}{n}")
        self._declare(product)

    def _declare(self, product: Design) -> None:
        pre = self.prefix
        for latch in self.source.latches.values():
            product.latch(f"{pre}{SIDE_SEP}{latch.name}", latch.width,
                          latch.init)
        for mem in self.source.memories.values():
            copy = product.memory(
                f"{pre}{SIDE_SEP}{mem.name}", mem.addr_width, mem.data_width,
                read_ports=mem.num_read_ports,
                write_ports=mem.num_write_ports, init=mem.init,
                init_words=mem.init_words)
            for port in mem.read_ports:
                self.rewriter.memread_map[(mem.name, port.index)] = \
                    copy.read(port.index).data

    def finish(self, product: Design) -> None:
        """Wire next-state functions and memory ports (post input decl)."""
        rw = self.rewriter
        pre = self.prefix
        for mem in self.source.memories.values():
            copy = product.memories[f"{pre}{SIDE_SEP}{mem.name}"]
            for port in mem.read_ports:
                copy.read(port.index).connect(
                    addr=rw.rewrite(port.addr), en=rw.rewrite(port.en))
            for port in mem.write_ports:
                copy.write(port.index).connect(
                    addr=rw.rewrite(port.addr), data=rw.rewrite(port.data),
                    en=rw.rewrite(port.en))
        for latch in self.source.latches.values():
            product.latches[f"{pre}{SIDE_SEP}{latch.name}"].next = \
                rw.rewrite(latch.next)


def build_miter(a: Design, b: Design,
                outputs: Sequence[tuple[Expr, Expr]],
                name: Optional[str] = None) -> Design:
    """Product design asserting the paired output expressions stay equal.

    Both designs must declare the same primary inputs (name and width);
    the miter drives each shared input into both sides.  The returned
    design carries one invariant ``equiv`` — the conjunction of the
    pairwise equalities — and per-pair invariants ``equiv_0``,
    ``equiv_1``, … for finer diagnosis.
    """
    a.validate()
    b.validate()
    if {n: i.width for n, i in a.inputs.items()} != \
            {n: i.width for n, i in b.inputs.items()}:
        raise ValueError("designs have different primary inputs; "
                         "a miter needs a shared input interface")
    if not outputs:
        raise ValueError("no output pairs to compare")
    product = Design(name or f"miter({a.name},{b.name})")
    side_a = MiterSide(product, a, "a")
    side_b = MiterSide(product, b, "b")
    for inp in a.inputs.values():
        product.input(inp.name, inp.width)
    side_a.finish(product)
    side_b.finish(product)
    checks = []
    for i, (ea, eb) in enumerate(outputs):
        if ea.design is not a or eb.design is not b:
            raise ValueError(f"output pair {i} does not belong to (a, b)")
        if ea.width != eb.width:
            raise ValueError(f"output pair {i} width mismatch "
                             f"({ea.width} vs {eb.width})")
        eq = side_a.rewriter.rewrite(ea).eq(side_b.rewriter.rewrite(eb))
        product.invariant(f"equiv_{i}", eq)
        checks.append(eq)
    product.invariant("equiv", product.and_many(checks))
    return product


def shared_init_groups(a: Design, b: Design) -> tuple[frozenset[str], ...]:
    """Pair same-named arbitrary-init memories of the two miter sides."""
    groups = []
    for mem_name, mem in a.memories.items():
        other = b.memories.get(mem_name)
        if other is None or mem.init is not None or other.init is not None:
            continue
        if (mem.addr_width, mem.data_width) != \
                (other.addr_width, other.data_width):
            continue
        groups.append(frozenset({f"a{SIDE_SEP}{mem_name}",
                                 f"b{SIDE_SEP}{mem_name}"}))
    return tuple(groups)


def check_equivalence(a: Design, b: Design,
                      outputs: Sequence[tuple[Expr, Expr]],
                      max_depth: int = 20,
                      share_arbitrary_init: bool = False,
                      find_proof: bool = False,
                      options=None):
    """Bounded (or inductive) equivalence of the paired outputs.

    Returns the :class:`repro.bmc.BmcResult` of checking ``equiv`` on the
    miter: CEX means the designs differ (the trace shows the diverging
    run); BOUNDED means no difference up to ``max_depth``; PROOF (only
    with ``find_proof=True``) means the outputs are equal in all
    reachable states.

    Miters are the headline workload for cross-memory comparator
    sharing (``BmcOptions.emm_cross_mem_share``, flowing through
    ``options``): the ``a::``/``b::`` memory copies see structurally
    identical address cones, so the session registry answers the second
    copy's comparators from the first copy's cache entries (bench C10).
    """
    from repro.bmc.engine import BmcEngine, BmcOptions

    miter = build_miter(a, b, outputs)
    base = options or BmcOptions()
    opts = replace(base, max_depth=max_depth, find_proof=find_proof,
                   pba=False)
    if share_arbitrary_init:
        opts = replace(opts, shared_init_memories=shared_init_groups(a, b))
    return BmcEngine(miter, "equiv", opts).run()


def diagnose_equivalence(a: Design, b: Design,
                         outputs: Sequence[tuple[Expr, Expr]],
                         max_depth: int = 20,
                         share_arbitrary_init: bool = False,
                         options=None, revalidate: bool = True):
    """Per-output-pair verdicts ``{"equiv_i": BmcResult}`` on one session.

    Where :func:`check_equivalence` answers "are they equal" with the
    conjoined ``equiv`` invariant, this checks every ``equiv_i``
    separately — the miter is unrolled *once* into a shared encoding
    session and each pair costs only its own property literals and
    solves, so localizing which outputs diverge is barely more expensive
    than the single combined check.

    With ``revalidate`` (default), every diverging trace is replayed a
    second time through the unified concrete oracle
    (:func:`repro.sim.oracle.default_oracle`) — all traces as lanes of
    *one* vector batch — and ``trace_validated`` is downgraded to False
    on any disagreement.  This is an independent cross-check of the
    engine's own replay, at the cost of a single batched sweep.
    """
    from repro.bmc.engine import BmcOptions, verify_many
    from repro.sim.oracle import Stimulus, default_oracle

    miter = build_miter(a, b, outputs)
    base = options or BmcOptions()
    opts = replace(base, max_depth=max_depth, find_proof=False, pba=False)
    if share_arbitrary_init:
        opts = replace(opts, shared_init_memories=shared_init_groups(a, b))
    names = [f"equiv_{i}" for i in range(len(outputs))]
    results = verify_many(miter, names, opts)
    if revalidate:
        diverging = [(name, r) for name, r in results.items()
                     if r.status == "cex" and r.trace is not None
                     and r.trace_validated is not None]
        if diverging:
            oracle = default_oracle(miter)
            traces = oracle.replay_batch(
                [Stimulus.from_trace(r.trace) for _, r in diverging])
            for (name, r), trace in zip(diverging, traces):
                r.trace_validated = bool(r.trace_validated
                                         and oracle.check(name, trace).failed)
    return results
