"""Verilog-2001 frontend: parse a synthesizable subset into a Design.

The paper's case studies were "implemented using Verilog HDL"; this
module lets such sources drive the verification platform directly.  The
accepted subset is the one :func:`repro.design.verilog.write_verilog`
emits, which makes the two ends roundtrippable (and the test-suite
checks the roundtrip by sequential equivalence):

* ``module``/``endmodule`` with a port list; ``clk`` and ``rst`` ports
  are recognized and consumed by the clocking template;
* ``input`` / ``output`` / ``reg`` / ``wire`` declarations, vectors
  ``[msb:0]``, and memories ``reg [w-1:0] name [0:n-1];``;
* continuous assigns (``assign x = e;`` or ``wire x = e;``) with the
  operators ``~ ! & | ^ && || + - == != < <= > >= ?: {,} [i] [h:l]``;
* one or more ``always @(posedge clk)`` blocks of non-blocking
  assignments with arbitrarily nested ``if``/``else`` — the idiomatic
  ``if (rst) begin <constant resets> end else begin ... end`` shape
  becomes latch initial values;
* memory writes ``name[addr] <= data;`` (each distinct occurrence is a
  write port) and reads ``name[addr]`` in any expression (each distinct
  address expression is a read port);
* ``prop_*`` outputs become properties; an ``\\`ifdef FORMAL`` block
  with ``assert``/``cover`` statements selects invariant vs. reach kind
  (default: invariant).

Everything else — blocking assigns in clocked blocks, multiple clocks,
latches inferred from incomplete combinational always blocks, dynamic
bit-selects of plain registers — is rejected with a located error.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.design.netlist import Design, Expr, ReadPort

__all__ = ["parse_verilog", "VerilogError"]


class VerilogError(ValueError):
    """Parse or elaboration failure, with line information when known."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<sized>\d+\s*'\s*[bdhBDH]\s*[0-9a-fA-F_xzXZ?]+)
  | (?P<num>\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><=|==|!=|&&|\|\||<<|>>|>=|[-+~!&|^<>=?:;,.(){}\[\]@*/])
""", re.VERBOSE | re.DOTALL)


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'sized' | 'op'
    text: str
    line: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise VerilogError(f"line {line}: unexpected character {text[pos]!r}")
        kind = m.lastgroup
        tok = m.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, tok, line))
        line += tok.count("\n")
        pos = m.end()
    return tokens


def _parse_sized_literal(text: str, line: int) -> tuple[int, int]:
    """``8'hFF`` -> (value, width)."""
    m = re.match(r"(\d+)\s*'\s*([bdhBDH])\s*([0-9a-fA-F_xzXZ?]+)", text)
    if m is None:
        raise VerilogError(f"line {line}: bad literal {text!r}")
    width = int(m.group(1))
    base = {"b": 2, "d": 10, "h": 16}[m.group(2).lower()]
    digits = m.group(3).replace("_", "")
    if re.search(r"[xzXZ?]", digits):
        raise VerilogError(f"line {line}: x/z literals are not supported")
    value = int(digits, base)
    if value >= (1 << width):
        raise VerilogError(f"line {line}: literal {text!r} overflows its width")
    return value, width


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass
class Node:
    line: int


@dataclass
class Num(Node):
    value: int
    width: Optional[int]  # None = unsized


@dataclass
class Ident(Node):
    name: str


@dataclass
class Index(Node):
    base: str
    index: "AstExpr"


@dataclass
class PartSelect(Node):
    base: str
    msb: int
    lsb: int


@dataclass
class Unary(Node):
    op: str
    arg: "AstExpr"


@dataclass
class Binary(Node):
    op: str
    lhs: "AstExpr"
    rhs: "AstExpr"


@dataclass
class Ternary(Node):
    cond: "AstExpr"
    then: "AstExpr"
    other: "AstExpr"


@dataclass
class Concat(Node):
    parts: list["AstExpr"]


AstExpr = Union[Num, Ident, Index, PartSelect, Unary, Binary, Ternary, Concat]


@dataclass
class NbAssign(Node):
    """Non-blocking assignment: target (reg or mem[addr]) <= rhs."""

    target: str
    index: Optional[AstExpr]
    rhs: AstExpr


@dataclass
class IfStmt(Node):
    cond: AstExpr
    then: list["Stmt"]
    other: list["Stmt"]


Stmt = Union[NbAssign, IfStmt]


@dataclass
class PortDecl:
    name: str
    direction: str  # 'input' | 'output'
    width: int


@dataclass
class VarDecl:
    name: str
    width: int
    depth: Optional[int] = None  # memories: number of words


@dataclass
class ModuleAst:
    name: str = ""
    ports: list[PortDecl] = field(default_factory=list)
    regs: list[VarDecl] = field(default_factory=list)
    wires: dict[str, AstExpr] = field(default_factory=dict)
    assigns: dict[str, AstExpr] = field(default_factory=dict)
    always_blocks: list[list[Stmt]] = field(default_factory=list)
    #: memory name -> {address: value} from ``initial`` blocks.
    initial_words: dict[str, dict[int, int]] = field(default_factory=dict)
    #: property name -> 'invariant' | 'reach', from the FORMAL block.
    formal_kinds: dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        i = self.pos + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise VerilogError("unexpected end of file")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise VerilogError(
                f"line {tok.line}: expected {text!r}, found {tok.text!r}")
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.text == text:
            self.pos += 1
            return True
        return False

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    # -- top level ---------------------------------------------------------

    def parse_module(self) -> ModuleAst:
        ast = ModuleAst()
        self.expect("module")
        ast.name = self.next().text
        if self.accept("("):
            while not self.accept(")"):
                tok = self.next()
                if tok.text == ",":
                    continue
        self.expect(";")
        while not self.at("endmodule"):
            tok = self.peek()
            if tok is None:
                raise VerilogError("missing endmodule")
            if tok.text in ("input", "output"):
                self._parse_port_decl(ast)
            elif tok.text == "reg":
                self._parse_reg_decl(ast)
            elif tok.text == "wire":
                self._parse_wire_decl(ast)
            elif tok.text == "assign":
                self._parse_assign(ast)
            elif tok.text == "always":
                self._parse_always(ast)
            elif tok.text == "initial":
                self._parse_initial(ast)
            else:
                raise VerilogError(
                    f"line {tok.line}: unsupported construct {tok.text!r}")
        self.expect("endmodule")
        return ast

    def _parse_range(self) -> int:
        """``[msb:0]`` -> width; absent range -> 1."""
        if not self.accept("["):
            return 1
        msb_tok = self.next()
        if msb_tok.kind != "num":
            raise VerilogError(f"line {msb_tok.line}: vector bounds must be "
                               "integer literals")
        self.expect(":")
        lsb_tok = self.next()
        self.expect("]")
        if lsb_tok.text != "0":
            raise VerilogError(f"line {lsb_tok.line}: only [msb:0] vectors "
                               "are supported")
        return int(msb_tok.text) + 1

    def _parse_port_decl(self, ast: ModuleAst) -> None:
        direction = self.next().text
        self.accept("reg")
        width = self._parse_range()
        while True:
            name = self.next()
            ast.ports.append(PortDecl(name.text, direction, width))
            if not self.accept(","):
                break
        self.expect(";")

    def _parse_reg_decl(self, ast: ModuleAst) -> None:
        self.expect("reg")
        width = self._parse_range()
        while True:
            name = self.next().text
            depth = None
            if self.accept("["):  # memory: [0:N-1]
                lo = self.next()
                self.expect(":")
                hi = self.next()
                self.expect("]")
                if lo.text != "0":
                    raise VerilogError(
                        f"line {lo.line}: memory ranges must start at 0")
                depth = int(hi.text) + 1
            ast.regs.append(VarDecl(name, width, depth))
            if not self.accept(","):
                break
        self.expect(";")

    def _parse_wire_decl(self, ast: ModuleAst) -> None:
        self.expect("wire")
        self._parse_range()  # width re-derived during elaboration
        name = self.next().text
        if self.accept("="):
            ast.wires[name] = self.parse_expr()
        elif self.accept(","):
            raise VerilogError("wire lists without initializers are not "
                               "supported; use one `wire name = expr;` each")
        self.expect(";")

    def _parse_assign(self, ast: ModuleAst) -> None:
        self.expect("assign")
        name = self.next().text
        self.expect("=")
        ast.assigns[name] = self.parse_expr()
        self.expect(";")

    def _parse_always(self, ast: ModuleAst) -> None:
        tok = self.expect("always")
        self.expect("@")
        self.expect("(")
        edge = self.next()
        clk = self.next()
        if edge.text != "posedge" or clk.text != "clk":
            raise VerilogError(f"line {tok.line}: only `always @(posedge clk)` "
                               "blocks are supported")
        self.expect(")")
        ast.always_blocks.append(self._parse_stmt_block())

    def _parse_initial(self, ast: ModuleAst) -> None:
        """``initial begin mem[3] = 8'd7; ... end`` — ROM contents."""
        tok = self.expect("initial")
        self.expect("begin")
        while not self.accept("end"):
            name = self.next()
            self.expect("[")
            addr = self.next()
            if addr.kind != "num":
                raise VerilogError(f"line {addr.line}: initial-block "
                                   "addresses must be integer literals")
            self.expect("]")
            self.expect("=")
            value = self.next()
            if value.kind == "sized":
                val, __ = _parse_sized_literal(value.text, value.line)
            elif value.kind == "num":
                val = int(value.text)
            else:
                raise VerilogError(f"line {value.line}: initial-block values "
                                   "must be literals")
            self.expect(";")
            ast.initial_words.setdefault(name.text, {})[int(addr.text)] = val

    def _parse_stmt_block(self) -> list[Stmt]:
        if self.accept("begin"):
            stmts: list[Stmt] = []
            while not self.accept("end"):
                stmts.append(self._parse_stmt())
            return stmts
        return [self._parse_stmt()]

    def _parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok is None:
            raise VerilogError("unexpected end of file in statement")
        if tok.text == "if":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self._parse_stmt_block()
            other: list[Stmt] = []
            if self.accept("else"):
                other = self._parse_stmt_block()
            return IfStmt(tok.line, cond, then, other)
        # Non-blocking assignment.
        name = self.next()
        if name.kind != "id":
            raise VerilogError(f"line {name.line}: expected statement, found "
                               f"{name.text!r}")
        index: Optional[AstExpr] = None
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
        if self.accept("="):
            raise VerilogError(f"line {name.line}: blocking assignment to "
                               f"{name.text!r} in a clocked block; use <=")
        self.expect("<=")
        rhs = self.parse_expr()
        self.expect(";")
        return NbAssign(name.line, name.text, index, rhs)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> AstExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> AstExpr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self._parse_ternary()
            self.expect(":")
            other = self._parse_ternary()
            return Ternary(cond.line, cond, then, other)
        return cond

    def _parse_binary(self, level: int) -> AstExpr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            tok = self.peek()
            if tok is None or tok.text not in ops:
                return lhs
            # `<=` is an operator here only inside expressions; statement
            # context never reaches this point with a pending assignment.
            self.next()
            rhs = self._parse_binary(level + 1)
            lhs = Binary(tok.line, tok.text, lhs, rhs)

    def _parse_unary(self) -> AstExpr:
        tok = self.peek()
        if tok is not None and tok.text in ("~", "!", "-"):
            self.next()
            arg = self._parse_unary()
            return Unary(tok.line, tok.text, arg)
        return self._parse_primary()

    def _parse_primary(self) -> AstExpr:
        tok = self.next()
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.text == "{":
            parts = [self.parse_expr()]
            while self.accept(","):
                parts.append(self.parse_expr())
            self.expect("}")
            return Concat(tok.line, parts)
        if tok.kind == "sized":
            value, width = _parse_sized_literal(tok.text, tok.line)
            return Num(tok.line, value, width)
        if tok.kind == "num":
            return Num(tok.line, int(tok.text), None)
        if tok.kind == "id":
            name = tok.text
            if self.accept("["):
                first = self.parse_expr()
                if self.accept(":"):
                    second = self.parse_expr()
                    self.expect("]")
                    if not isinstance(first, Num) or not isinstance(second, Num):
                        raise VerilogError(
                            f"line {tok.line}: part-select bounds must be "
                            "constant")
                    return PartSelect(tok.line, name, first.value, second.value)
                self.expect("]")
                return Index(tok.line, name, first)
            return Ident(tok.line, name)
        raise VerilogError(f"line {tok.line}: unexpected token {tok.text!r} "
                           "in expression")


# ---------------------------------------------------------------------------
# Elaboration: AST -> Design
# ---------------------------------------------------------------------------

_FORMAL_RE = re.compile(
    r"`ifdef\s+FORMAL(?P<body>.*?)`endif", re.DOTALL)
_ASSERT_RE = re.compile(r"\b(assert|cover)\s*\(\s*([A-Za-z_][A-Za-z0-9_$]*)")


def _strip_formal(text: str) -> tuple[str, dict[str, str]]:
    """Remove the FORMAL block; harvest assert/cover property kinds."""
    kinds: dict[str, str] = {}
    m = _FORMAL_RE.search(text)
    if m is None:
        return text, kinds
    for verb, name in _ASSERT_RE.findall(m.group("body")):
        kinds[name] = "invariant" if verb == "assert" else "reach"
    return text[:m.start()] + text[m.end():], kinds


class _Elaborator:
    def __init__(self, ast: ModuleAst, prop_prefix: str) -> None:
        self.ast = ast
        self.design = Design(ast.name)
        self.prop_prefix = prop_prefix
        self.widths: dict[str, int] = {}
        self.mem_decls: dict[str, VarDecl] = {}
        #: memory -> address ASTs, one read port per distinct address.
        self._read_addrs: dict[str, list[AstExpr]] = {}
        self._wire_cache: dict[str, Expr] = {}
        self._elaborating: set[str] = set()

    # -- entry ----------------------------------------------------------------

    def run(self) -> Design:
        d = self.design
        for port in self.ast.ports:
            if port.direction == "input" and port.name not in ("clk", "rst"):
                d.input(port.name, port.width)
                self.widths[port.name] = port.width
        for reg in self.ast.regs:
            if reg.depth is None:
                self.widths[reg.name] = reg.width
            else:
                if reg.depth & (reg.depth - 1):
                    raise VerilogError(
                        f"memory {reg.name!r} depth {reg.depth} is not a "
                        "power of two")
                self.mem_decls[reg.name] = reg
        self._elaborate_registers()
        # Properties are elaborated *before* the memory ports are wired:
        # a read that appears only in a property (or a wire feeding one)
        # must still allocate its read port.
        self._attach_properties()
        self._connect_memories()
        d.validate()
        return d

    # -- clocked blocks ---------------------------------------------------------

    def _elaborate_registers(self) -> None:
        d = self.design
        reg_writes: dict[str, list] = {}   # reg -> updates (applied in order)
        mem_writes: dict[str, list] = {}   # mem -> [(guard, addr, data)]
        resets: dict[str, int] = {}
        for block in self.ast.always_blocks:
            stmts = block
            # Recognize the reset idiom on the outermost statement.
            if (len(stmts) == 1 and isinstance(stmts[0], IfStmt)
                    and isinstance(stmts[0].cond, Ident)
                    and stmts[0].cond.name == "rst"):
                for s in stmts[0].then:
                    if not isinstance(s, NbAssign) or s.index is not None \
                            or not isinstance(s.rhs, Num):
                        raise VerilogError(
                            f"line {s.line}: reset branch must contain only "
                            "`reg <= constant;` assignments")
                    resets[s.target] = s.rhs.value
                stmts = stmts[0].other
            self._collect(stmts, None, reg_writes, mem_writes)

        # Declare latches first (so RHS elaboration can reference them) …
        for reg in self.ast.regs:
            if reg.depth is None:
                init = resets.get(reg.name)
                d.latch(reg.name, reg.width, init)
        for name, decl in self.mem_decls.items():
            write_count = max(1, len(mem_writes.get(name, [])))
            d.memory(name, addr_width=(decl.depth - 1).bit_length(),
                     data_width=decl.width, read_ports=1,
                     write_ports=write_count, init=None,
                     init_words=self.ast.initial_words.get(name))
        # … then build the next-state functions.
        for reg in self.ast.regs:
            if reg.depth is not None:
                continue
            latch = d.latches[reg.name]
            nxt: Expr = latch.expr
            for guard, rhs_ast in reg_writes.get(reg.name, []):
                rhs = self._coerce(self._expr(rhs_ast), reg.width, rhs_ast)
                nxt = rhs if guard is None else self._cond(guard).ite(rhs, nxt)
            latch.next = nxt
        self._mem_writes = mem_writes

    def _collect(self, stmts: list[Stmt], guard: Optional[AstExpr],
                 reg_writes: dict, mem_writes: dict) -> None:
        for s in stmts:
            if isinstance(s, NbAssign):
                if s.index is not None:
                    if s.target not in self.mem_decls:
                        raise VerilogError(
                            f"line {s.line}: indexed assignment to "
                            f"non-memory {s.target!r}")
                    mem_writes.setdefault(s.target, []).append(
                        (guard, s.index, s.rhs))
                else:
                    reg_writes.setdefault(s.target, []).append((guard, s.rhs))
            elif isinstance(s, IfStmt):
                then_guard = s.cond if guard is None else \
                    Binary(s.line, "&&", guard, s.cond)
                self._collect(s.then, then_guard, reg_writes, mem_writes)
                if s.other:
                    neg = Unary(s.line, "!", s.cond)
                    else_guard = neg if guard is None else \
                        Binary(s.line, "&&", guard, neg)
                    self._collect(s.other, else_guard, reg_writes, mem_writes)

    def _connect_memories(self) -> None:
        d = self.design
        # Elaborating one port's address can *discover* further reads (of
        # the same or another memory), growing the `_read_addrs` lists —
        # iterate to a fixpoint before anything is connected.
        write_conns: dict[str, list] = {}
        for name in self.mem_decls:
            mem = d.memories[name]
            conns = []
            for guard, addr_ast, data_ast in self._mem_writes.get(name, []):
                addr = self._coerce(self._expr(addr_ast), mem.addr_width,
                                    addr_ast)
                data = self._coerce(self._expr(data_ast), mem.data_width,
                                    data_ast)
                en = d.const(1, 1) if guard is None else self._cond(guard)
                conns.append((addr, data, en))
            write_conns[name] = conns
        read_conns: dict[str, list] = {name: [] for name in self.mem_decls}
        progress = True
        while progress:
            progress = False
            for name in self.mem_decls:
                mem = d.memories[name]
                addrs = self._read_addrs.get(name, [])
                done = read_conns[name]
                while len(done) < len(addrs):
                    ast = addrs[len(done)]
                    done.append(self._coerce(self._expr(ast),
                                             mem.addr_width, ast))
                    progress = True
        for name in self.mem_decls:
            mem = d.memories[name]
            aw = mem.addr_width
            if not read_conns[name]:
                # No read anywhere: connect a dormant port.
                mem.read(0).connect(addr=d.const(0, aw), en=0)
            else:
                for i, addr in enumerate(read_conns[name]):
                    mem.read(i).connect(addr=addr, en=1)
            if not write_conns[name]:
                mem.write(0).connect(addr=d.const(0, aw),
                                     data=d.const(0, mem.data_width), en=0)
            for i, (addr, data, en) in enumerate(write_conns[name]):
                mem.write(i).connect(addr=addr, data=data, en=en)

    def _attach_properties(self) -> None:
        d = self.design
        for port in self.ast.ports:
            if port.direction != "output":
                continue
            if not port.name.startswith(self.prop_prefix):
                continue
            expr_ast = self.ast.assigns.get(port.name)
            if expr_ast is None:
                raise VerilogError(
                    f"property output {port.name!r} has no assign")
            kind = self.ast.formal_kinds.get(port.name, "invariant")
            expr = self._expr(expr_ast)
            if expr.width != 1:
                expr = expr.nonzero()
            pname = port.name[len(self.prop_prefix):]
            if kind == "invariant":
                d.invariant(pname, expr)
            else:
                d.reach(pname, expr)

    # -- expression elaboration -------------------------------------------------

    def _memory_read(self, node: Index) -> Expr:
        """Each syntactically distinct address becomes one read port.

        The ports are connected (addresses elaborated, enables tied high)
        in :meth:`_connect_memories` once the full set is known.
        """
        name = node.base
        addrs = self._read_addrs.setdefault(name, [])
        key = _ast_key(node.index)
        for i, existing in enumerate(addrs):
            if _ast_key(existing) == key:
                return self._port_data(name, i)
        addrs.append(node.index)
        return self._port_data(name, len(addrs) - 1)

    def _port_data(self, name: str, index: int) -> Expr:
        mem = self.design.memories[name]
        while mem.num_read_ports <= index:
            mem.read_ports.append(ReadPort(self.design, mem,
                                           mem.num_read_ports))
        return mem.read(index).data

    def _expr(self, node: AstExpr, width_hint: Optional[int] = None) -> Expr:
        d = self.design
        if isinstance(node, Num):
            width = node.width or width_hint
            if width is None:
                raise VerilogError(
                    f"line {node.line}: cannot infer width of unsized "
                    f"literal {node.value}; use a sized literal like "
                    f"8'd{node.value}")
            return d.const(node.value, width)
        if isinstance(node, Ident):
            return self._ident(node)
        if isinstance(node, Index):
            if node.base in self.mem_decls:
                return self._memory_read(node)
            base = self._ident_by_name(node.base, node.line)
            if not isinstance(node.index, Num):
                raise VerilogError(
                    f"line {node.line}: dynamic bit-select of {node.base!r} "
                    "is not supported")
            i = node.index.value
            return base[i]
        if isinstance(node, PartSelect):
            base = self._ident_by_name(node.base, node.line)
            return base[node.lsb:node.msb + 1]
        if isinstance(node, Unary):
            if node.op == "~":
                return ~self._expr(node.arg, width_hint)
            if node.op == "!":
                return self._expr(node.arg).is_zero()
            if node.op == "-":
                arg = self._expr(node.arg, width_hint)
                return d.const(0, arg.width) - arg
        if isinstance(node, Binary):
            return self._binary(node, width_hint)
        if isinstance(node, Ternary):
            cond = self._cond(node.cond)
            then = self._expr_pair(node.then, node.other, width_hint)
            return cond.ite(*then)
        if isinstance(node, Concat):
            parts = [self._expr(p) for p in node.parts]
            out = parts[-1]  # last part is the least significant
            for p in reversed(parts[:-1]):
                out = out.concat(p)
            return out
        raise VerilogError(f"line {node.line}: cannot elaborate {node!r}")

    def _binary(self, node: Binary, width_hint: Optional[int]) -> Expr:
        op = node.op
        if op in ("&&", "||"):
            lhs = self._cond(node.lhs)
            rhs = self._cond(node.rhs)
            return lhs & rhs if op == "&&" else lhs | rhs
        hint = width_hint if op in ("&", "|", "^", "+", "-") else None
        lhs, rhs = self._expr_pair(node.lhs, node.rhs, hint)
        if op == "&":
            return lhs & rhs
        if op == "|":
            return lhs | rhs
        if op == "^":
            return lhs ^ rhs
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "==":
            return lhs.eq(rhs)
        if op == "!=":
            return lhs.ne(rhs)
        if op == "<":
            return lhs.ult(rhs)
        if op == "<=":
            return lhs.ule(rhs)
        if op == ">":
            return lhs.ugt(rhs)
        if op == ">=":
            return lhs.uge(rhs)
        raise VerilogError(f"line {node.line}: operator {op!r} unsupported")

    def _expr_pair(self, a: AstExpr, b: AstExpr,
                   width_hint: Optional[int]) -> tuple[Expr, Expr]:
        """Elaborate two operands, letting a sized one set the other's width."""
        a_num = isinstance(a, Num) and a.width is None
        b_num = isinstance(b, Num) and b.width is None
        if a_num and not b_num:
            eb = self._expr(b, width_hint)
            return self._expr(a, eb.width), eb
        if b_num and not a_num:
            ea = self._expr(a, width_hint)
            return ea, self._expr(b, ea.width)
        return self._expr(a, width_hint), self._expr(b, width_hint)

    def _cond(self, node: AstExpr) -> Expr:
        expr = self._expr(node)
        return expr if expr.width == 1 else expr.nonzero()

    def _coerce(self, expr: Expr, width: int, node: AstExpr) -> Expr:
        if expr.width == width:
            return expr
        if expr.width < width:
            return expr.zext(width)
        raise VerilogError(
            f"line {node.line}: expression of width {expr.width} does not "
            f"fit target width {width}")

    def _ident(self, node: Ident) -> Expr:
        return self._ident_by_name(node.name, node.line)

    def _ident_by_name(self, name: str, line: int) -> Expr:
        d = self.design
        if name in d.inputs:
            return d.inputs[name].expr
        if name in d.latches:
            return d.latches[name].expr
        if name in self._wire_cache:
            return self._wire_cache[name]
        ast_expr = self.ast.wires.get(name) or self.ast.assigns.get(name)
        if ast_expr is not None:
            if name in self._elaborating:
                raise VerilogError(
                    f"line {line}: combinational cycle through wire {name!r}")
            self._elaborating.add(name)
            expr = self._expr(ast_expr)
            self._elaborating.discard(name)
            self._wire_cache[name] = expr
            return expr
        raise VerilogError(f"line {line}: unknown identifier {name!r}")


def _ast_key(node: AstExpr):
    """Structural key for read-address deduplication."""
    if isinstance(node, Num):
        return ("num", node.value, node.width)
    if isinstance(node, Ident):
        return ("id", node.name)
    if isinstance(node, Index):
        return ("ix", node.base, _ast_key(node.index))
    if isinstance(node, PartSelect):
        return ("ps", node.base, node.msb, node.lsb)
    if isinstance(node, Unary):
        return ("un", node.op, _ast_key(node.arg))
    if isinstance(node, Binary):
        return ("bin", node.op, _ast_key(node.lhs), _ast_key(node.rhs))
    if isinstance(node, Ternary):
        return ("tern", _ast_key(node.cond), _ast_key(node.then),
                _ast_key(node.other))
    if isinstance(node, Concat):
        return ("cat", tuple(_ast_key(p) for p in node.parts))
    raise TypeError(node)


def parse_verilog(text: str, prop_prefix: str = "prop_") -> Design:
    """Parse Verilog source (the supported subset) into a Design.

    Outputs whose names start with ``prop_prefix`` become properties;
    an ``\\`ifdef FORMAL`` block's ``assert``/``cover`` statements select
    the kind, defaulting to invariant.
    """
    stripped, kinds = _strip_formal(text)
    tokens = tokenize(stripped)
    parser = _Parser(tokens)
    ast = parser.parse_module()
    ast.formal_kinds = kinds
    return _Elaborator(ast, prop_prefix).run()
