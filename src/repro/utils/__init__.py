"""Small shared helpers (no domain logic lives here)."""

from repro.utils.luby import luby
from repro.utils.bitvec import int_to_bits, bits_to_int, mask

__all__ = ["luby", "int_to_bits", "bits_to_int", "mask"]
