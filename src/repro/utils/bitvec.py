"""Bit-vector <-> integer conversions (LSB-first bit lists throughout)."""

from __future__ import annotations

from typing import Sequence


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    return (1 << width) - 1


def int_to_bits(value: int, width: int) -> list[bool]:
    """Little-endian bit decomposition of ``value`` truncated to ``width``."""
    if width < 0:
        raise ValueError("width must be non-negative")
    value &= mask(width)
    return [bool((value >> i) & 1) for i in range(width)]


def bits_to_int(bits: Sequence[bool]) -> int:
    """Little-endian bit list -> unsigned integer."""
    out = 0
    for i, b in enumerate(bits):
        if b:
            out |= 1 << i
    return out
