"""The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...)."""

from __future__ import annotations


def luby(i: int) -> int:
    """Return the i-th element (0-based) of the Luby sequence.

    Used to schedule SAT-solver restarts; the sequence is optimal for Las
    Vegas algorithms up to a constant factor.  This is the classic
    MiniSat formulation with base 2.
    """
    if i < 0:
        raise ValueError("index must be non-negative")
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i %= size
    return 1 << seq
