"""Constant-time AIG evaluation under a concrete input assignment."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.aig.aig import Aig


def evaluate(aig: Aig, inputs: Mapping[int, bool],
             outputs: Sequence[int]) -> list[bool]:
    """Evaluate output literals given values for input literals.

    ``inputs`` maps *positive input literals* (as returned by
    :meth:`Aig.new_input`) to booleans; unlisted inputs default to False.
    """
    values: dict[int, bool] = {0: False}
    for lit, val in inputs.items():
        if lit & 1:
            raise ValueError("input keys must be positive literals")
        values[lit >> 1] = bool(val)

    def node_value(idx: int) -> bool:
        got = values.get(idx)
        if got is not None:
            return got
        stack = [idx]
        while stack:
            top = stack[-1]
            if top in values:
                stack.pop()
                continue
            fan = aig._fanins[top]
            if fan is None:
                values[top] = False  # unconstrained input
                stack.pop()
                continue
            a, b = fan
            ai, bi = a >> 1, b >> 1
            if ai not in values:
                stack.append(ai)
                continue
            if bi not in values:
                stack.append(bi)
                continue
            va = values[ai] ^ bool(a & 1)
            vb = values[bi] ^ bool(b & 1)
            values[top] = va and vb
            stack.pop()
        return values[idx]

    out: list[bool] = []
    for lit in outputs:
        v = node_value(lit >> 1)
        out.append(v ^ bool(lit & 1))
    return out


def evaluate_word(aig: Aig, inputs: Mapping[int, bool],
                  word: Sequence[int]) -> int:
    """Evaluate a word (LSB-first literal list) to an unsigned integer."""
    bits = evaluate(aig, inputs, list(word))
    value = 0
    for i, b in enumerate(bits):
        if b:
            value |= 1 << i
    return value
