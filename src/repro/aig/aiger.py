"""ASCII AIGER (``aag``) import/export for combinational AIG cones.

The exporter renumbers the cone of the requested outputs into compact
AIGER literals; the importer rebuilds an :class:`Aig` and returns the
input/output literal lists.  Handy for dumping BMC frames to external
tools and for round-trip testing the AIG substrate.
"""

from __future__ import annotations

from typing import Sequence, TextIO

from repro.aig.aig import Aig


def write_aag(out: TextIO, aig: Aig, inputs: Sequence[int],
              outputs: Sequence[int], comment: str = "") -> None:
    """Write the cone of ``outputs`` in aag format.

    ``inputs`` fixes the input ordering; inputs encountered in the cone but
    not listed are appended after the given ones.
    """
    order: dict[int, int] = {}  # AIG node index -> aiger var (1-based)
    in_list: list[int] = []

    def map_input(idx: int) -> None:
        if idx not in order:
            order[idx] = 0  # placeholder; renumbered below
            in_list.append(idx)

    for lit in inputs:
        if not aig.is_input(lit):
            raise ValueError("write_aag inputs must be primary-input literals")
        map_input(lit >> 1)

    # Topological collection of AND nodes in the cone.
    ands: list[int] = []
    seen: set[int] = set(in_list) | {0}
    stack = [lt >> 1 for lt in outputs]
    post: list[int] = []
    while stack:
        idx = stack.pop()
        if idx in seen:
            continue
        fan = aig._fanins[idx]
        if fan is None:
            map_input(idx)
            seen.add(idx)
            continue
        a, b = fan
        need = [x >> 1 for x in (a, b) if x >> 1 not in seen]
        if need:
            stack.append(idx)
            stack.extend(need)
            # Guard against re-processing: mark when both fanins done next visit.
            continue
        seen.add(idx)
        post.append(idx)
    ands = post

    next_var = 1
    for idx in in_list:
        order[idx] = next_var
        next_var += 1
    for idx in ands:
        order[idx] = next_var
        next_var += 1

    def to_aiger_lit(aig_lit: int) -> int:
        idx = aig_lit >> 1
        sign = aig_lit & 1
        if idx == 0:
            return sign  # our FALSE is literal 0 = aiger 0; TRUE is 1
        return order[idx] * 2 + sign

    max_var = next_var - 1
    out.write(f"aag {max_var} {len(in_list)} 0 {len(outputs)} {len(ands)}\n")
    for idx in in_list:
        out.write(f"{order[idx] * 2}\n")
    for lit in outputs:
        out.write(f"{to_aiger_lit(lit)}\n")
    for idx in ands:
        a, b = aig._fanins[idx]  # type: ignore[misc]
        la, lb = to_aiger_lit(a), to_aiger_lit(b)
        if la < lb:
            la, lb = lb, la
        out.write(f"{order[idx] * 2} {la} {lb}\n")
    for i, idx in enumerate(in_list):
        name = aig.input_name(idx << 1)
        out.write(f"i{i} {name}\n")
    if comment:
        out.write(f"c\n{comment}\n")


def parse_aag(text: TextIO | str) -> tuple[Aig, list[int], list[int]]:
    """Parse aag text; returns ``(aig, input_literals, output_literals)``.

    Latch sections are rejected (this reader covers the combinational
    subset used by the exporter).
    """
    if hasattr(text, "read"):
        text = text.read()  # type: ignore[union-attr]
    lines = [lt for lt in str(text).splitlines() if lt.strip()]
    header = lines[0].split()
    if header[0] != "aag":
        raise ValueError("not an ascii aiger (aag) file")
    _m, n_in, n_latch, n_out, n_and = (int(x) for x in header[1:6])
    if n_latch:
        raise ValueError("latches are not supported by this reader")
    aig = Aig()
    lit_map: dict[int, int] = {0: 0, 1: 1}
    pos = 1
    inputs: list[int] = []
    for _ in range(n_in):
        al = int(lines[pos].split()[0])
        pos += 1
        lit = aig.new_input()
        lit_map[al] = lit
        lit_map[al ^ 1] = lit ^ 1
        inputs.append(lit)
    out_aiger: list[int] = []
    for _ in range(n_out):
        out_aiger.append(int(lines[pos].split()[0]))
        pos += 1
    for _ in range(n_and):
        lhs, a, b = (int(x) for x in lines[pos].split()[:3])
        pos += 1
        lit = aig.and_(lit_map[a], lit_map[b])
        lit_map[lhs] = lit
        lit_map[lhs ^ 1] = lit ^ 1
    outputs = [lit_map[lt] for lt in out_aiger]
    return aig, inputs, outputs
