"""Structurally hashed And-Inverter Graph.

Nodes are referenced through integer literals ``2 * index + sign``; the
constant node has index 0 (literal 0 = FALSE, literal 1 = TRUE).  AND nodes
are hash-consed with constant folding and input-order canonicalisation, so
equivalent two-level structures share nodes — this keeps the unrolled BMC
formula compact, mirroring the simplified circuit representation the
paper's platform uses.

Structural hashing is an *option* (``Aig(strash=False)``): with it off,
every :meth:`Aig.and_gate` call mints a fresh node with no folding at all,
which is the paper's plain circuit representation and the A/B baseline the
strash benchmarks and cross-check tests measure against.  The two modes
are semantically identical — folding and hashing only merge nodes that
compute the same function — and the ``strash_hits`` / ``strash_folds``
counters record exactly how much merging happened.
"""

from __future__ import annotations

from typing import Iterable, Optional

FALSE = 0
TRUE = 1


def lit_not(lit: int) -> int:
    """Negate an AIG literal."""
    return lit ^ 1


class Aig:
    """A growing AIG with (optional) structural hashing.

    The node table stores, per index, either ``None`` (constant / primary
    input) or a pair ``(a, b)`` of fanin literals for AND nodes.  Indices
    are topologically ordered by construction: an AND node's fanins always
    have smaller indices, which evaluation and CNF emission rely on.

    Parameters
    ----------
    strash:
        When True (the default), :meth:`and_gate` folds trivial requests
        (``x∧x → x``, ``x∧¬x → 0``, ``x∧1 → x``, ``x∧0 → 0``) and returns
        the existing node for a repeated ``(lhs, rhs)`` fanin pair after
        canonical ordering.  When False every call creates a fresh node —
        the unstrashed baseline for size comparisons.
    """

    def __init__(self, strash: bool = True) -> None:
        self._fanins: list[Optional[tuple[int, int]]] = [None]
        self._input_names: dict[int, str] = {}
        self._num_ands = 0
        self._strash: Optional[dict[tuple[int, int], int]] = {} if strash else None
        #: AND requests answered from the hash table (existing node reused).
        self.strash_hits = 0
        #: AND requests folded away (constant / idempotence / complement).
        self.strash_folds = 0

    # -- construction ---------------------------------------------------

    @property
    def strash(self) -> bool:
        """Whether hash-consing and constant folding are enabled."""
        return self._strash is not None

    def new_input(self, name: str = "") -> int:
        """Create a primary input; returns its (positive) literal."""
        idx = len(self._fanins)
        self._fanins.append(None)
        if name:
            self._input_names[idx] = name
        return idx << 1

    def and_gate(self, a: int, b: int) -> int:
        """AND of two literals; the strashed node constructor.

        With ``strash`` enabled, folds constants, idempotence and
        complements, then consults the structural hash table so a repeated
        fanin pair returns the existing node; ``strash_folds`` and
        ``strash_hits`` count the merges.  With ``strash`` disabled the
        call unconditionally appends a fresh node.
        """
        table = self._strash
        if table is not None:
            if a == FALSE or b == FALSE or a == b ^ 1:
                self.strash_folds += 1
                return FALSE
            if a == TRUE:
                self.strash_folds += 1
                return b
            if b == TRUE or a == b:
                self.strash_folds += 1
                return a
        if a > b:
            a, b = b, a
        key = (a, b)
        if table is not None:
            hit = table.get(key)
            if hit is not None:
                self.strash_hits += 1
                return hit
        idx = len(self._fanins)
        self._fanins.append(key)
        self._num_ands += 1
        lit = idx << 1
        if table is not None:
            table[key] = lit
        return lit

    #: Historic name of the constructor, used throughout the code base.
    and_ = and_gate

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_gate(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_gate(a, lit_not(b)), self.and_gate(lit_not(a), b))

    def iff_(self, a: int, b: int) -> int:
        return lit_not(self.xor_(a, b))

    def mux(self, sel: int, t: int, e: int) -> int:
        """``sel ? t : e`` (if-then-else over literals).

        The constant-selector and equal-branch shortcuts are semantic
        identities of the ITE operator itself, so they apply in both
        strash modes; the underlying AND gates go through
        :meth:`and_gate` and follow the configured mode.
        """
        if sel == TRUE:
            return t
        if sel == FALSE:
            return e
        if t == e:
            return t
        return self.or_(self.and_gate(sel, t), self.and_gate(lit_not(sel), e))

    #: ITE spelling of :meth:`mux`, for callers thinking in word-level ops.
    ite = mux

    def implies(self, a: int, b: int) -> int:
        return self.or_(lit_not(a), b)

    def and_many(self, lits: Iterable[int]) -> int:
        out = TRUE
        for lit in lits:
            out = self.and_gate(out, lit)
        return out

    def or_many(self, lits: Iterable[int]) -> int:
        out = FALSE
        for lit in lits:
            out = self.or_(out, lit)
        return out

    # -- inspection -------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count including the constant node."""
        return len(self._fanins)

    @property
    def num_ands(self) -> int:
        return self._num_ands

    def is_and(self, lit: int) -> bool:
        return self._fanins[lit >> 1] is not None

    def is_input(self, lit: int) -> bool:
        idx = lit >> 1
        return idx != 0 and self._fanins[idx] is None

    def is_const(self, lit: int) -> bool:
        return lit >> 1 == 0

    def fanins(self, lit: int) -> tuple[int, int]:
        """Fanin literals of an AND node (raises for non-AND)."""
        f = self._fanins[lit >> 1]
        if f is None:
            raise ValueError(f"literal {lit} is not an AND node")
        return f

    def input_name(self, lit: int) -> str:
        return self._input_names.get(lit >> 1, f"n{lit >> 1}")

    def cone_size(self, roots: Iterable[int]) -> int:
        """Number of AND nodes in the transitive fanin of ``roots``."""
        seen: set[int] = set()
        stack = [r >> 1 for r in roots]
        count = 0
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            f = self._fanins[idx]
            if f is not None:
                count += 1
                stack.append(f[0] >> 1)
                stack.append(f[1] >> 1)
        return count
