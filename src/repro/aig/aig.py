"""Structurally hashed And-Inverter Graph.

Nodes are referenced through integer literals ``2 * index + sign``; the
constant node has index 0 (literal 0 = FALSE, literal 1 = TRUE).  AND nodes
are hash-consed with constant folding and input-order canonicalisation, so
equivalent two-level structures share nodes — this keeps the unrolled BMC
formula compact, mirroring the simplified circuit representation the
paper's platform uses.
"""

from __future__ import annotations

from typing import Iterable, Optional

FALSE = 0
TRUE = 1


def lit_not(lit: int) -> int:
    """Negate an AIG literal."""
    return lit ^ 1


class Aig:
    """A growing AIG with structural hashing.

    The node table stores, per index, either ``None`` (constant / primary
    input) or a pair ``(a, b)`` of fanin literals for AND nodes.  Indices
    are topologically ordered by construction: an AND node's fanins always
    have smaller indices, which evaluation and CNF emission rely on.
    """

    def __init__(self) -> None:
        self._fanins: list[Optional[tuple[int, int]]] = [None]
        self._input_names: dict[int, str] = {}
        self._strash: dict[tuple[int, int], int] = {}

    # -- construction ---------------------------------------------------

    def new_input(self, name: str = "") -> int:
        """Create a primary input; returns its (positive) literal."""
        idx = len(self._fanins)
        self._fanins.append(None)
        if name:
            self._input_names[idx] = name
        return idx << 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with folding and structural hashing."""
        if a == FALSE or b == FALSE or a == lit_not(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        hit = self._strash.get(key)
        if hit is not None:
            return hit
        idx = len(self._fanins)
        self._fanins.append(key)
        lit = idx << 1
        self._strash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, lit_not(b)), self.and_(lit_not(a), b))

    def iff_(self, a: int, b: int) -> int:
        return lit_not(self.xor_(a, b))

    def mux(self, sel: int, t: int, e: int) -> int:
        """``sel ? t : e``."""
        if sel == TRUE:
            return t
        if sel == FALSE:
            return e
        if t == e:
            return t
        return self.or_(self.and_(sel, t), self.and_(lit_not(sel), e))

    def implies(self, a: int, b: int) -> int:
        return self.or_(lit_not(a), b)

    def and_many(self, lits: Iterable[int]) -> int:
        out = TRUE
        for l in lits:
            out = self.and_(out, l)
        return out

    def or_many(self, lits: Iterable[int]) -> int:
        out = FALSE
        for l in lits:
            out = self.or_(out, l)
        return out

    # -- inspection -------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count including the constant node."""
        return len(self._fanins)

    @property
    def num_ands(self) -> int:
        return len(self._strash)

    def is_and(self, lit: int) -> bool:
        return self._fanins[lit >> 1] is not None

    def is_input(self, lit: int) -> bool:
        idx = lit >> 1
        return idx != 0 and self._fanins[idx] is None

    def is_const(self, lit: int) -> bool:
        return lit >> 1 == 0

    def fanins(self, lit: int) -> tuple[int, int]:
        """Fanin literals of an AND node (raises for non-AND)."""
        f = self._fanins[lit >> 1]
        if f is None:
            raise ValueError(f"literal {lit} is not an AND node")
        return f

    def input_name(self, lit: int) -> str:
        return self._input_names.get(lit >> 1, f"n{lit >> 1}")

    def cone_size(self, roots: Iterable[int]) -> int:
        """Number of AND nodes in the transitive fanin of ``roots``."""
        seen: set[int] = set()
        stack = [r >> 1 for r in roots]
        count = 0
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            f = self._fanins[idx]
            if f is not None:
                count += 1
                stack.append(f[0] >> 1)
                stack.append(f[1] >> 1)
        return count
