"""Word-level operators over AIG literal vectors.

A *word* is a list of AIG literals, least-significant bit first.  These
helpers are what the design unroller uses to lower word-level RTL
expressions (adders, comparators, muxes) onto the bit-level AIG.

Every helper routes through :meth:`repro.aig.aig.Aig.and_gate` (directly
or via the or/xor/mux wrappers), so the whole word layer inherits the
AIG's structural-hashing mode: with ``strash`` on, a recurring cone —
the ``eq_word`` comparators the gate-based EMM encoding builds per
(read, write-pair), the mux/ITE chains of ROM initial words, ripple
adders over shared operands — is constructed once and every repeat
returns the existing node.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.aig import Aig, FALSE, TRUE, lit_not

Word = list[int]


def const_word(value: int, width: int) -> Word:
    """Constant word (no AIG nodes needed)."""
    return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]


def input_word(aig: Aig, name: str, width: int) -> Word:
    """A fresh primary-input word, bit names ``name[i]``."""
    return [aig.new_input(f"{name}[{i}]") for i in range(width)]


def not_word(word: Sequence[int]) -> Word:
    return [lit_not(b) for b in word]


def and_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    _check(a, b)
    return [aig.and_gate(x, y) for x, y in zip(a, b)]


def or_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    _check(a, b)
    return [aig.or_(x, y) for x, y in zip(a, b)]


def xor_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    _check(a, b)
    return [aig.xor_(x, y) for x, y in zip(a, b)]


def mux_word(aig: Aig, sel: int, t: Sequence[int], e: Sequence[int]) -> Word:
    """Per-bit ``sel ? t : e``."""
    _check(t, e)
    return [aig.mux(sel, x, y) for x, y in zip(t, e)]


#: ITE spelling of :func:`mux_word` (the word-level if-then-else).
ite_word = mux_word


def eq_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Single literal: words are equal."""
    _check(a, b)
    return aig.and_many(aig.iff_(x, y) for x, y in zip(a, b))


def ne_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lit_not(eq_word(aig, a, b))


def add_word(aig: Aig, a: Sequence[int], b: Sequence[int],
             carry_in: int = FALSE) -> Word:
    """Ripple-carry sum truncated to the operand width."""
    _check(a, b)
    out: Word = []
    carry = carry_in
    for x, y in zip(a, b):
        half = aig.xor_(x, y)
        s = aig.xor_(half, carry)
        carry = aig.or_(aig.and_gate(x, y), aig.and_gate(carry, half))
        out.append(s)
    return out


def sub_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    """Two's-complement subtraction ``a - b`` (width-truncated)."""
    return add_word(aig, a, not_word(b), carry_in=TRUE)


def inc_word(aig: Aig, a: Sequence[int]) -> Word:
    return add_word(aig, a, const_word(1, len(a)))


def dec_word(aig: Aig, a: Sequence[int]) -> Word:
    return sub_word(aig, a, const_word(1, len(a)))


def lt_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Single literal: ``a < b`` as unsigned integers."""
    _check(a, b)
    lt = FALSE
    for x, y in zip(a, b):  # LSB to MSB; MSB decision dominates
        bit_lt = aig.and_gate(lit_not(x), y)
        bit_eq = aig.iff_(x, y)
        lt = aig.or_(bit_lt, aig.and_gate(bit_eq, lt))
    return lt


def le_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lit_not(lt_unsigned(aig, b, a))


def gt_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lt_unsigned(aig, b, a)


def ge_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lit_not(lt_unsigned(aig, a, b))


def is_zero(aig: Aig, a: Sequence[int]) -> int:
    return aig.and_many(lit_not(b) for b in a)


def resize_word(a: Sequence[int], width: int) -> Word:
    """Zero-extend or truncate to ``width`` bits."""
    out = list(a[:width])
    out.extend([FALSE] * (width - len(out)))
    return out


def concat_words(low: Sequence[int], high: Sequence[int]) -> Word:
    """Concatenate: ``low`` occupies the low bits."""
    return list(low) + list(high)


def _check(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
