"""Word-level operators over AIG literal vectors.

A *word* is a list of AIG literals, least-significant bit first.  These
helpers are what the design unroller uses to lower word-level RTL
expressions (adders, comparators, muxes) onto the bit-level AIG.

Every helper routes through :meth:`repro.aig.aig.Aig.and_gate` (directly
or via the or/xor/mux wrappers), so the whole word layer inherits the
AIG's structural-hashing mode: with ``strash`` on, a recurring cone —
the ``eq_word`` comparators the gate-based EMM encoding builds per
(read, write-pair), the mux/ITE chains of ROM initial words, ripple
adders over shared operands — is constructed once and every repeat
returns the existing node.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.aig import Aig, FALSE, TRUE, lit_not

Word = list[int]


def const_word(value: int, width: int) -> Word:
    """Constant word (no AIG nodes needed)."""
    return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]


def input_word(aig: Aig, name: str, width: int) -> Word:
    """A fresh primary-input word, bit names ``name[i]``."""
    return [aig.new_input(f"{name}[{i}]") for i in range(width)]


def not_word(word: Sequence[int]) -> Word:
    return [lit_not(b) for b in word]


def and_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    _check(a, b)
    return [aig.and_gate(x, y) for x, y in zip(a, b)]


def or_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    _check(a, b)
    return [aig.or_(x, y) for x, y in zip(a, b)]


def xor_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    _check(a, b)
    return [aig.xor_(x, y) for x, y in zip(a, b)]


def mux_word(aig: Aig, sel: int, t: Sequence[int], e: Sequence[int]) -> Word:
    """Per-bit ``sel ? t : e``."""
    _check(t, e)
    return [aig.mux(sel, x, y) for x, y in zip(t, e)]


#: ITE spelling of :func:`mux_word` (the word-level if-then-else).
ite_word = mux_word


# -- EMM forwarding-chain builders (shared by both EMM encoders) ----------
#
# Both the pure-gate EMM encoding (:class:`repro.emm.gates.GateEmmMemory`)
# and the AIG-routed hybrid encoding (:class:`repro.emm.forwarding.
# EmmMemory` with ``hybrid_strash``) lower the paper's equation-(4)/(5)
# forwarding semantics onto the AIG through these two constructions; only
# the match-signal (``S``) construction differs per encoder — AIG
# ``eq_word`` cones for the gate encoding, aliased CNF comparators for
# the hybrid one.  Keeping the chain itself in one implementation is what
# makes the cross-frame suffix sharing behave identically in both.


def priority_mux_chain(aig: Aig, stages: Sequence[tuple[int, Sequence[int]]],
                       seed: Sequence[int]) -> tuple[Word, int]:
    """Oldest-write-first forwarding chain: ``value' = mux(S, WD, value)``.

    ``stages`` are ``(S, WD)`` pairs ordered **oldest write first**; a
    stage muxed in later overrides every earlier one, so the newest
    matching write wins — equation (4)'s priority with the chain
    inverted.  ``seed`` is the initial-memory-contents word the chain
    falls through to.  Because stage j's cone depends only on stages
    0..j and the (stable) seed, a recurring read-address cone makes
    frame k's entire chain a strash **prefix** of frame k+1's.

    Returns ``(value_word, suffix_hits)``; ``suffix_hits`` counts stages
    answered entirely by the strash table — a previous frame's chain (or
    a sibling read port's, within the frame) growing by reuse rather
    than rebuild.  The strash-hit requirement keeps purely
    constant-folded stages (e.g. an ``S`` that folded TRUE) out of the
    reuse diagnostic.
    """
    value = list(seed)
    suffix_hits = 0
    for s, word in stages:
        ands_before = aig.num_ands
        hits_before = aig.strash_hits
        for b, bit in enumerate(word):
            value[b] = aig.mux(s, bit, value[b])
        if aig.num_ands == ands_before and aig.strash_hits > hits_before:
            suffix_hits += 1
    return value, suffix_hits


def exclusive_select_chain(aig: Aig, stages: Sequence[tuple[int, Sequence[int]]],
                           enable: int) -> tuple[list[tuple[int, Word]], int]:
    """Latest-write-first exclusive ``S``/``PS`` chain (equation (4)).

    ``stages`` are ``(S, WD)`` pairs ordered **latest write first**, the
    exact order of equation (4); ``enable`` seeds ``PS`` (the read
    enable).  Returns ``(selected, ps)`` where ``selected`` pairs each
    stage's exclusive select ``S ∧ PS`` with its data word and ``ps`` is
    the final fall-through literal ("no write matched at all", the
    paper's ``S_{-1}``).  Every node depends on the newest write, so
    frames share nothing — this is the rebuilt-per-frame A/B baseline.
    """
    ps = enable
    selected: list[tuple[int, Word]] = []
    for s, word in stages:
        s_excl = aig.and_gate(s, ps)
        ps = aig.and_gate(lit_not(s), ps)
        selected.append((s_excl, list(word)))
    return selected, ps


def onehot_select_word(aig: Aig, selected: Sequence[tuple[int, Sequence[int]]],
                       n_lit: int, init_word: Sequence[int]) -> Word:
    """OR-accumulate exclusively selected words plus the fall-through.

    ``value = Σ (s_excl ∧ WD) + (n ∧ init)`` per bit — sound because the
    selects of :func:`exclusive_select_chain` are one-hot by
    construction.  The second half of the latest-first encoding.
    """
    value: Word = [FALSE] * len(init_word)
    for s_excl, word in selected:
        for b, bit in enumerate(word):
            value[b] = aig.or_(value[b], aig.and_gate(s_excl, bit))
    for b, bit in enumerate(init_word):
        value[b] = aig.or_(value[b], aig.and_gate(n_lit, bit))
    return value


def eq_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Single literal: words are equal."""
    _check(a, b)
    return aig.and_many(aig.iff_(x, y) for x, y in zip(a, b))


def ne_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lit_not(eq_word(aig, a, b))


def add_word(aig: Aig, a: Sequence[int], b: Sequence[int],
             carry_in: int = FALSE) -> Word:
    """Ripple-carry sum truncated to the operand width."""
    _check(a, b)
    out: Word = []
    carry = carry_in
    for x, y in zip(a, b):
        half = aig.xor_(x, y)
        s = aig.xor_(half, carry)
        carry = aig.or_(aig.and_gate(x, y), aig.and_gate(carry, half))
        out.append(s)
    return out


def sub_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Word:
    """Two's-complement subtraction ``a - b`` (width-truncated)."""
    return add_word(aig, a, not_word(b), carry_in=TRUE)


def inc_word(aig: Aig, a: Sequence[int]) -> Word:
    return add_word(aig, a, const_word(1, len(a)))


def dec_word(aig: Aig, a: Sequence[int]) -> Word:
    return sub_word(aig, a, const_word(1, len(a)))


def lt_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Single literal: ``a < b`` as unsigned integers."""
    _check(a, b)
    lt = FALSE
    for x, y in zip(a, b):  # LSB to MSB; MSB decision dominates
        bit_lt = aig.and_gate(lit_not(x), y)
        bit_eq = aig.iff_(x, y)
        lt = aig.or_(bit_lt, aig.and_gate(bit_eq, lt))
    return lt


def le_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lit_not(lt_unsigned(aig, b, a))


def gt_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lt_unsigned(aig, b, a)


def ge_unsigned(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    return lit_not(lt_unsigned(aig, a, b))


def is_zero(aig: Aig, a: Sequence[int]) -> int:
    return aig.and_many(lit_not(b) for b in a)


def resize_word(a: Sequence[int], width: int) -> Word:
    """Zero-extend or truncate to ``width`` bits."""
    out = list(a[:width])
    out.extend([FALSE] * (width - len(out)))
    return out


def concat_words(low: Sequence[int], high: Sequence[int]) -> Word:
    """Concatenate: ``low`` occupies the low bits."""
    return list(low) + list(high)


def _check(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
