"""And-Inverter Graph substrate (S2).

The AIG is the "2-input gates" half of the paper's hybrid gate/CNF
representation: the BMC unroller lowers the word-level design to AIG nodes
per time frame, EMM exclusivity chains (Section 3 / equation (4)) are built
as AIG gates, while address-equality and read-data constraints are emitted
directly as CNF clauses.

Literal convention: an AIG literal is ``2 * node_index + sign``; node 0 is
the constant, so literal 0 is FALSE and literal 1 is TRUE.
"""

from repro.aig.aig import Aig, FALSE, TRUE
from repro.aig.tseitin import CnfEmitter
from repro.aig.eval import evaluate
from repro.aig.aiger import write_aag, parse_aag

__all__ = ["Aig", "FALSE", "TRUE", "CnfEmitter", "evaluate",
           "write_aag", "parse_aag"]
