"""Lazy Tseitin conversion of AIG cones into a SAT solver.

The emitter maintains a mapping from AIG node index to SAT variable and
emits the three AND-gate clauses per node the first time a cone needs it.
Every clause carries the emitter's *current provenance label* — the BMC
engine switches the label as it emits transition logic, EMM constraints,
initial-state units and loop-free-path constraints, and proof-based
abstraction later reads those labels back out of unsat cores.

Structural clause dedup (``strash=True``, the default) adds a second,
CNF-level hash layer: the three-clause triple of an AND gate is keyed on
the canonically ordered pair of its fanin *SAT literals*, so a re-emitted
cone whose AIG nodes are distinct but whose lowered structure repeats
reuses the existing SAT variable instead of minting a new one and
re-adding the clauses.  With AIG-level strashing on, node identity
already dedups almost everything and this cache is a safety net; with the
AIG unstrashed it is what keeps repeated cones from exploding the CNF.

Provenance under sharing is *first-emitter-wins*: the clause triple keeps
the label that was current when it was first emitted, and a later cache
hit under a different label adds no clauses.  That is sound for
proof-based abstraction — any core that uses the shared triple attributes
it to a context that really does imply the gate's function — and it is
pinned by a dedicated test (``tests/test_strash.py``).

Native ITE lowering (``ite=True``, the default) recognizes the two-level
``or(and(s, t), and(!s, e))`` shape — the AIG spelling of every mux the
word layer builds, and of xor (``t = !e``) — and emits one variable with
the four ITE clauses instead of three AND triples (3 vars, 9 clauses).
The inner AND nodes get no CNF at all; ``ites_emitted`` counts the
lowered shapes, and a strash-style cache keyed on the normalized
``(sel, t, e)`` SAT literals shares repeated ITEs the same way the gate
cache shares triples.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.aig.aig import Aig, FALSE, TRUE
from repro.sat.solver import Solver


class CnfEmitter:
    """Incrementally emits AIG cones as CNF into a :class:`Solver`.

    Parameters
    ----------
    strash:
        Enable the CNF-level gate-triple cache described in the module
        docstring.  ``strash_hits`` counts gate emissions answered from
        the cache (no new variable, no new clauses).
    ite:
        Detect ``or(and(s, t), and(!s, e))`` shapes and emit the
        1-var/4-clause native ITE form instead of three AND triples.
        ``False`` restores the plain per-node Tseitin lowering (the
        ablation the accounting closed forms were derived against).
    """

    def __init__(self, aig: Aig, solver: Solver, strash: bool = True,
                 ite: bool = True) -> None:
        self.aig = aig
        self.solver = solver
        self._var_of: dict[int, int] = {}  # AIG node index -> SAT var
        self._input_of: dict[int, int] = {}  # SAT var -> aliased input index
        self._label: Hashable = None
        self._const_var: Optional[int] = None
        #: canonical (fanin SAT lit, fanin SAT lit) -> gate output var
        self._gate_cache: Optional[dict[tuple[int, int], int]] = {} if strash else None
        self._ite = ite
        #: normalized (sel, t, e) SAT lits -> ITE output var (strash only)
        self._ite_cache: Optional[dict[tuple[int, int, int], int]] = \
            {} if (strash and ite) else None
        #: Count of AND-gate clause triples emitted (for size accounting).
        self.gates_emitted = 0
        #: Count of mux/xor shapes lowered to the native 4-clause ITE
        #: form (each replaces up to three AND triples).
        self.ites_emitted = 0
        #: Gate triples answered from the CNF-level cache.
        self.strash_hits = 0

    # -- label management -------------------------------------------------

    def set_label(self, label: Hashable) -> None:
        """Set the provenance label attached to subsequently emitted clauses."""
        self._label = label

    @property
    def label(self) -> Hashable:
        return self._label

    @property
    def strash(self) -> bool:
        """Whether the CNF-level gate-triple cache is enabled."""
        return self._gate_cache is not None

    # -- lowering ---------------------------------------------------------

    def sat_lit(self, aig_lit: int) -> int:
        """SAT literal equisatisfiably representing ``aig_lit``.

        Emits the literal's AND cone on first use.  Constants map to a
        dedicated always-true variable.
        """
        idx = aig_lit >> 1
        sign = aig_lit & 1
        if idx == 0:
            # Node 0 is constant FALSE; its SAT var is asserted true, so
            # AIG literal 1 (TRUE) maps to +var and literal 0 to -var.
            var = self._ensure_const()
            return var if sign else -var
        var = self._var_of.get(idx)
        if var is None:
            self._emit_cone(idx)
            var = self._var_of[idx]
        return -var if sign else var

    def sat_word(self, word: Sequence[int]) -> list[int]:
        return [self.sat_lit(b) for b in word]

    def var_for(self, aig_lit: int) -> Optional[int]:
        """SAT var already allocated for the literal's node, if any."""
        return self._var_of.get(aig_lit >> 1)

    # -- lifting (SAT -> AIG, the inverse direction) ---------------------

    def aig_lit_for(self, sat_lit: int, name: str = "") -> int:
        """AIG literal *aliased* to an existing SAT literal.

        The inverse of :meth:`sat_lit`: the returned literal is an AIG
        primary input whose node is bound to ``sat_lit``'s variable, so
        lowering it back emits no clauses and returns the original
        literal.  Two guarantees make this the bridge that lets CNF-level
        signals (EMM address comparators, port enables) participate in
        AIG construction:

        * **Stable identity** — repeated requests for the same SAT
          variable return the same input node, so a cone built over
          aliased literals at frame k is structurally identical to the
          same cone rebuilt at frame k+1 and the strash layer shares it.
        * **Constant transparency** — literals of the emitter's dedicated
          always-true variable map to the AIG constants, so downstream
          ``and_gate`` folding mirrors what clause-level absorption would
          have done to the same constraint.
        """
        value = self.const_value(sat_lit)
        if value is not None:
            return TRUE if value else FALSE
        var = abs(sat_lit)
        idx = self._input_of.get(var)
        if idx is None:
            lit = self.aig.new_input(name or f"sat{var}")
            idx = lit >> 1
            self._input_of[var] = idx
            self._var_of[idx] = var
        return (idx << 1) | (1 if sat_lit < 0 else 0)

    # -- constant identity (used by the EMM address-comparison layer) ----

    def true_lit(self) -> int:
        """SAT literal that is always true (allocates the const var once)."""
        return self._ensure_const()

    def const_value(self, sat_lit: int) -> Optional[bool]:
        """Truth value of a SAT literal of the constant variable.

        Returns None for literals of any other (symbolic) variable —
        this is how callers recognise constant address bits, since every
        AIG constant lowers to the single dedicated always-true var.
        """
        if self._const_var is None or abs(sat_lit) != self._const_var:
            return None
        return sat_lit > 0

    def add_clause(self, sat_lits: Sequence[int], label: Hashable = None) -> int:
        """Add a raw CNF clause (used for the paper's direct-CNF constraints)."""
        return self.solver.add_clause(
            sat_lits, label if label is not None else self._label
        )

    def assert_lit(self, aig_lit: int, label: Hashable = None) -> None:
        """Assert ``aig_lit`` as a unit clause."""
        self.add_clause([self.sat_lit(aig_lit)], label)

    # -- internals ---------------------------------------------------------

    def _ensure_const(self) -> int:
        if self._const_var is None:
            self._const_var = self.solver.new_var()
            self.solver.add_clause([self._const_var], ("const",))
        return self._const_var

    def _emit_cone(self, root_idx: int) -> None:
        aig = self.aig
        var_of = self._var_of
        solver = self.solver
        label = self._label
        gate_cache = self._gate_cache
        stack = [root_idx]
        while stack:
            idx = stack[-1]
            if idx in var_of:
                stack.pop()
                continue
            fan = aig._fanins[idx]
            if fan is None:
                # Primary input (or free node): plain variable.
                var_of[idx] = solver.new_var()
                stack.pop()
                continue
            a, b = fan
            ite = self._detect_ite(a, b) if self._ite else None
            if ite is not None:
                sel, t, e = ite
                missing = False
                for lt in (sel, t, e):
                    li = lt >> 1
                    if li != 0 and li not in var_of:
                        stack.append(li)
                        missing = True
                if missing:
                    continue  # node stays; re-detected once fanins exist
                stack.pop()
                ls = self._existing_lit(sel)
                lt = self._existing_lit(t)
                le = self._existing_lit(e)
                if ls < 0:
                    # ITE(!s, t, e) == ITE(s, e, t): normalize to a
                    # positive selector so the cache is polarity-blind.
                    ls, lt, le = -ls, le, lt
                ite_cache = self._ite_cache
                if ite_cache is not None:
                    hit = ite_cache.get((ls, lt, le))
                    if hit is not None:
                        var_of[idx] = hit
                        self.strash_hits += 1
                        continue
                # The node is AND(!and(s,t), !and(!s,e)) == !ITE(s,t,e):
                # v <-> !(s ? t : e) in four clauses, one variable.  The
                # inner AND nodes never get CNF.
                v = solver.new_var()
                var_of[idx] = v
                solver.add_clause([-ls, -lt, -v], label)
                solver.add_clause([-ls, lt, v], label)
                solver.add_clause([ls, -le, -v], label)
                solver.add_clause([ls, le, v], label)
                self.ites_emitted += 1
                if ite_cache is not None:
                    ite_cache[(ls, lt, le)] = v
                continue
            ai, bi = a >> 1, b >> 1
            missing = False
            if ai != 0 and ai not in var_of:
                stack.append(ai)
                missing = True
            if bi != 0 and bi not in var_of:
                stack.append(bi)
                missing = True
            if missing:
                continue
            stack.pop()
            la = self._existing_lit(a)
            lb = self._existing_lit(b)
            if gate_cache is not None:
                key = (la, lb) if la <= lb else (lb, la)
                hit = gate_cache.get(key)
                if hit is not None:
                    # Same lowered structure: reuse the triple's output var.
                    # Its clauses keep their original (first-emitter) label.
                    var_of[idx] = hit
                    self.strash_hits += 1
                    continue
            v = solver.new_var()
            var_of[idx] = v
            solver.add_clause([-v, la], label)
            solver.add_clause([-v, lb], label)
            solver.add_clause([v, -la, -lb], label)
            self.gates_emitted += 1
            if gate_cache is not None:
                gate_cache[key] = v

    def _detect_ite(self, a: int, b: int) -> Optional[tuple[int, int, int]]:
        """Match ``AND(a, b) == !ITE(sel, t, e)`` against the mux shape.

        Requires both fanins to be negated AND nodes sharing a
        complementary selector literal — ``a = !and(sel, t)``,
        ``b = !and(!sel, e)`` in either order/pairing (xor matches with
        ``t = !e``).  Returns ``(sel, t, e)`` AIG literals, or None.
        Nodes whose inner ANDs are both lowered already are left to the
        plain triple path: one 3-clause triple over the existing vars
        beats a 4-clause ITE there.
        """
        if not (a & 1 and b & 1):
            return None
        ai, bi = a >> 1, b >> 1
        if ai == 0 or bi == 0:
            return None
        fanins = self.aig._fanins
        fa = fanins[ai]
        fb = fanins[bi]
        if fa is None or fb is None:
            return None
        var_of = self._var_of
        if ai in var_of and bi in var_of:
            return None
        for s in fa:
            for u in fb:
                if u == s ^ 1:
                    t = fa[1] if fa[0] == s else fa[0]
                    e = fb[1] if fb[0] == u else fb[0]
                    return (s, t, e)
        return None

    def _existing_lit(self, aig_lit: int) -> int:
        idx = aig_lit >> 1
        if idx == 0:
            var = self._ensure_const()
            return var if aig_lit & 1 else -var
        var = self._var_of[idx]
        return -var if aig_lit & 1 else var
