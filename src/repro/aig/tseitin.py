"""Lazy Tseitin conversion of AIG cones into a SAT solver.

The emitter maintains a mapping from AIG node index to SAT variable and
emits the three AND-gate clauses per node the first time a cone needs it.
Every clause carries the emitter's *current provenance label* — the BMC
engine switches the label as it emits transition logic, EMM constraints,
initial-state units and loop-free-path constraints, and proof-based
abstraction later reads those labels back out of unsat cores.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.aig.aig import Aig
from repro.sat.solver import Solver


class CnfEmitter:
    """Incrementally emits AIG cones as CNF into a :class:`Solver`."""

    def __init__(self, aig: Aig, solver: Solver) -> None:
        self.aig = aig
        self.solver = solver
        self._var_of: dict[int, int] = {}  # AIG node index -> SAT var
        self._label: Hashable = None
        self._const_var: int | None = None
        #: Count of AND-gate clause triples emitted (for size accounting).
        self.gates_emitted = 0

    # -- label management -------------------------------------------------

    def set_label(self, label: Hashable) -> None:
        """Set the provenance label attached to subsequently emitted clauses."""
        self._label = label

    @property
    def label(self) -> Hashable:
        return self._label

    # -- lowering ---------------------------------------------------------

    def sat_lit(self, aig_lit: int) -> int:
        """SAT literal equisatisfiably representing ``aig_lit``.

        Emits the literal's AND cone on first use.  Constants map to a
        dedicated always-true variable.
        """
        idx = aig_lit >> 1
        sign = aig_lit & 1
        if idx == 0:
            # Node 0 is constant FALSE; its SAT var is asserted true, so
            # AIG literal 1 (TRUE) maps to +var and literal 0 to -var.
            var = self._ensure_const()
            return var if sign else -var
        var = self._var_of.get(idx)
        if var is None:
            self._emit_cone(idx)
            var = self._var_of[idx]
        return -var if sign else var

    def sat_word(self, word: Sequence[int]) -> list[int]:
        return [self.sat_lit(b) for b in word]

    def var_for(self, aig_lit: int) -> int | None:
        """SAT var already allocated for the literal's node, if any."""
        return self._var_of.get(aig_lit >> 1)

    # -- constant identity (used by the EMM address-comparison layer) ----

    def true_lit(self) -> int:
        """SAT literal that is always true (allocates the const var once)."""
        return self._ensure_const()

    def const_value(self, sat_lit: int) -> bool | None:
        """Truth value of a SAT literal of the constant variable.

        Returns None for literals of any other (symbolic) variable —
        this is how callers recognise constant address bits, since every
        AIG constant lowers to the single dedicated always-true var.
        """
        if self._const_var is None or abs(sat_lit) != self._const_var:
            return None
        return sat_lit > 0

    def add_clause(self, sat_lits: Sequence[int], label: Hashable = None) -> int:
        """Add a raw CNF clause (used for the paper's direct-CNF constraints)."""
        return self.solver.add_clause(sat_lits, label if label is not None else self._label)

    def assert_lit(self, aig_lit: int, label: Hashable = None) -> None:
        """Assert ``aig_lit`` as a unit clause."""
        self.add_clause([self.sat_lit(aig_lit)], label)

    # -- internals ---------------------------------------------------------

    def _ensure_const(self) -> int:
        if self._const_var is None:
            self._const_var = self.solver.new_var()
            self.solver.add_clause([self._const_var], ("const",))
        return self._const_var

    def _emit_cone(self, root_idx: int) -> None:
        aig = self.aig
        var_of = self._var_of
        solver = self.solver
        label = self._label
        stack = [root_idx]
        while stack:
            idx = stack[-1]
            if idx in var_of:
                stack.pop()
                continue
            fan = aig._fanins[idx]
            if fan is None:
                # Primary input (or free node): plain variable.
                var_of[idx] = solver.new_var()
                stack.pop()
                continue
            a, b = fan
            ai, bi = a >> 1, b >> 1
            missing = False
            if ai != 0 and ai not in var_of:
                stack.append(ai)
                missing = True
            if bi != 0 and bi not in var_of:
                stack.append(bi)
                missing = True
            if missing:
                continue
            stack.pop()
            v = solver.new_var()
            var_of[idx] = v
            la = self._existing_lit(a)
            lb = self._existing_lit(b)
            solver.add_clause([-v, la], label)
            solver.add_clause([-v, lb], label)
            solver.add_clause([v, -la, -lb], label)
            self.gates_emitted += 1

    def _existing_lit(self, aig_lit: int) -> int:
        idx = aig_lit >> 1
        if idx == 0:
            var = self._ensure_const()
            return var if aig_lit & 1 else -var
        var = self._var_of[idx]
        return -var if aig_lit & 1 else var
