"""Lightweight wall-clock phase timers for the verification stack.

One small primitive, :class:`PhaseTimers`, shared by every layer that
wants a measured (not asserted) performance story: the BMC scheduler
times *encode* vs *solve* per run, the solver times *propagate* /
*analyze* / *reduce* / *simplify* inside its search loop
(:class:`repro.sat.solver.SolverStats` ``time_*_s`` fields), and the
fuzz farm times its SAT vs simulation halves per round.  Everything is
plain ``time.perf_counter()`` arithmetic — no sampling, no threads —
and is off by default: the engine flips it on under
``BmcOptions.profile`` (CLI ``--profile``), the farm under
``FarmConfig.profile``.
"""

from __future__ import annotations

import resource
import sys
import time
from contextlib import contextmanager


def peak_rss_mb() -> float:
    """Lifetime peak resident-set size of this process in MiB.

    ``ru_maxrss`` is kibibytes on Linux but *bytes* on macOS — scale by
    platform or the figure (and everything gated on it, like
    ``mem_quota_mb`` via the :func:`current_rss_mb` fallback) is off by
    1024x off-Linux.  The divisor is computed per call so tests can
    monkeypatch ``sys.platform``.
    """
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / divisor


def current_rss_mb() -> float:
    """Current resident-set size of this process in MiB.

    The per-job memory quota (``BmcOptions.mem_quota_mb``) needs the
    *current* footprint, not the lifetime peak: a pooled service worker
    runs many jobs, and ``ru_maxrss`` — once pushed over a quota by one
    job — would degrade every later job in the same process.  Reads
    ``/proc/self/statm`` where available (Linux); falls back to the
    rusage peak elsewhere, which is conservative but monotone.
    """
    try:
        with open("/proc/self/statm") as f:
            resident_pages = int(f.read().split()[1])
        return resident_pages * resource.getpagesize() / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        return peak_rss_mb()


class PhaseTimers:
    """Accumulates wall-clock seconds (and call counts) per named phase."""

    __slots__ = ("times", "counts")

    def __init__(self) -> None:
        self.times: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.times[phase] = self.times.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def measure(self, phase: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - t0)

    def total(self) -> float:
        return sum(self.times.values())

    def snapshot(self) -> dict:
        """JSON-ready ``{phase: {"s": seconds, "n": calls}}`` mapping."""
        return {phase: {"s": round(self.times[phase], 6),
                        "n": self.counts[phase]}
                for phase in sorted(self.times)}

    def merge(self, other: "PhaseTimers") -> None:
        for phase, seconds in other.times.items():
            self.times[phase] = self.times.get(phase, 0.0) + seconds
            self.counts[phase] = (self.counts.get(phase, 0)
                                  + other.counts[phase])

    def format(self, indent: str = "") -> str:
        """Human-readable breakdown, widest phase first."""
        if not self.times:
            return f"{indent}(no phases recorded)"
        total = self.total() or 1.0
        lines = []
        for phase, seconds in sorted(self.times.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(f"{indent}{phase:<12s} {seconds:8.3f}s "
                         f"({seconds / total:5.1%}, n={self.counts[phase]})")
        return "\n".join(lines)


def solver_phase_times(solver_stats: dict) -> dict[str, float]:
    """Extract the solver's internal phase times from a stats snapshot.

    Returns ``{phase: seconds}`` for the ``time_<phase>_s`` fields of
    :class:`repro.sat.solver.SolverStats`; empty when profiling was off
    (all zero).
    """
    out = {}
    for key, value in solver_stats.items():
        if key.startswith("time_") and key.endswith("_s") and value:
            out[key[len("time_"):-len("_s")]] = value
    return out
