"""Forward-reachability invariant checking over BDDs.

Builds a monolithic transition relation for a *memory-free* design
(current-state and next-state variables interleaved, inputs last),
iterates image computation to a fixpoint, and checks the property
against each frontier — the "BDD-based symbolic model checking" leg of
the paper's verification platform.

Memory-laden designs must be explicitly expanded first; at realistic
address widths that is exactly where the node limit triggers, matching
the paper's "our BDD-based model checker was unable to build even the
transition relation for these abstract models".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.bdd.manager import FALSE, TRUE, BddLimitExceeded, BddManager
from repro.design.netlist import Design, Expr

Word = list[int]


@dataclass
class BddReachResult:
    """Outcome of a BDD reachability run."""

    status: str  # 'proof' | 'cex' | 'limit' | 'bounded'
    property_name: str
    iterations: int
    #: Depth at which a bad state first intersected the frontier.
    cex_depth: Optional[int] = None
    reachable_states: Optional[int] = None
    peak_nodes: int = 0
    wall_time_s: float = 0.0

    @property
    def proved(self) -> bool:
        return self.status == "proof"

    def describe(self) -> str:
        if self.status == "proof":
            return (f"{self.property_name}: proved; fixpoint after "
                    f"{self.iterations} images, {self.reachable_states} "
                    f"reachable states, {self.peak_nodes} BDD nodes")
        if self.status == "cex":
            return f"{self.property_name}: violated at depth {self.cex_depth}"
        if self.status == "limit":
            return (f"{self.property_name}: BDD node limit exceeded after "
                    f"{self.iterations} images ({self.peak_nodes} nodes)")
        return f"{self.property_name}: inconclusive"


class _Lowerer:
    """Lowers word-level expressions to BDD words over given leaf words."""

    def __init__(self, mgr: BddManager, latch_words: dict[str, Word],
                 input_words: dict[str, Word]) -> None:
        self.mgr = mgr
        self.latch_words = latch_words
        self.input_words = input_words
        self._cache: dict[int, Word] = {}

    def word(self, expr: Expr) -> Word:
        cache = self._cache
        stack = [expr]
        while stack:
            e = stack[-1]
            if e._id in cache:
                stack.pop()
                continue
            missing = [a for a in e.args if a._id not in cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            cache[e._id] = self._lower(e)
        return cache[expr._id]

    def _lower(self, e: Expr) -> Word:
        m = self.mgr
        cache = self._cache
        kind = e.kind
        if kind == "const":
            return [TRUE if (e.payload >> i) & 1 else FALSE
                    for i in range(e.width)]
        if kind == "input":
            return self.input_words[e.payload]
        if kind == "latch":
            return self.latch_words[e.payload]
        if kind == "memread":
            raise ValueError("BDD model checking requires a memory-free "
                             "design (expand or abstract memories first)")
        a = cache[e.args[0]._id] if e.args else []
        if kind == "not":
            return [m.not_(b) for b in a]
        if kind == "slice":
            lo, hi = e.payload
            return a[lo:hi]
        if kind == "zext":
            return a + [FALSE] * (e.width - len(a))
        if kind == "mux":
            t = cache[e.args[1]._id]
            f = cache[e.args[2]._id]
            return [m.ite(a[0], x, y) for x, y in zip(t, f)]
        if kind == "concat":
            return a + cache[e.args[1]._id]
        b = cache[e.args[1]._id]
        if kind == "and":
            return [m.and_(x, y) for x, y in zip(a, b)]
        if kind == "or":
            return [m.or_(x, y) for x, y in zip(a, b)]
        if kind == "xor":
            return [m.xor_(x, y) for x, y in zip(a, b)]
        if kind == "add":
            return self._adder(a, b, FALSE)
        if kind == "sub":
            return self._adder(a, [m.not_(x) for x in b], TRUE)
        if kind == "eq":
            return [m.and_many(m.iff_(x, y) for x, y in zip(a, b))]
        if kind == "ult":
            lt = FALSE
            for x, y in zip(a, b):
                lt = m.or_(m.and_(m.not_(x), y), m.and_(m.iff_(x, y), lt))
            return [lt]
        raise ValueError(f"unknown expression kind {kind!r}")

    def _adder(self, a: Word, b: Word, carry: int) -> Word:
        m = self.mgr
        out = []
        for x, y in zip(a, b):
            s = m.xor_(m.xor_(x, y), carry)
            carry = m.or_(m.and_(x, y), m.and_(carry, m.xor_(x, y)))
            out.append(s)
        return out


def bdd_model_check(design: Design, property_name: str,
                    node_limit: Optional[int] = 500_000,
                    max_iterations: int = 10_000) -> BddReachResult:
    """Check an invariant / reach property by BDD forward reachability."""
    design.validate()
    if design.memories:
        raise ValueError("BDD model checking requires a memory-free design")
    prop = design.properties[property_name]
    t0 = time.monotonic()
    mgr = BddManager(node_limit=node_limit)

    # Interleaved variable order: current bit 2i, next bit 2i+1; inputs
    # after all state bits.  Order-preserving renaming next->current then
    # just shifts odd indices down by one.
    latch_bits: list[tuple[str, int]] = []
    for name, latch in design.latches.items():
        for b in range(latch.width):
            latch_bits.append((name, b))
    current: dict[str, Word] = {name: [] for name in design.latches}
    nxt_vars: dict[str, Word] = {name: [] for name in design.latches}
    for name, __ in latch_bits:
        current[name].append(mgr.new_var())
        nxt_vars[name].append(mgr.new_var())
    inputs: dict[str, Word] = {}
    for name, inp in design.inputs.items():
        inputs[name] = [mgr.new_var() for __ in range(inp.width)]

    current_var_ids = frozenset(range(0, 2 * len(latch_bits), 2))
    input_var_ids = frozenset(range(2 * len(latch_bits), mgr.num_vars))
    rename_next_to_current = {v: v - 1
                              for v in range(1, 2 * len(latch_bits), 2)}

    lower = _Lowerer(mgr, current, inputs)
    try:
        # Transition relation: AND over all bits of (next <-> f(current, x)).
        trans = TRUE
        for name, latch in design.latches.items():
            fn = lower.word(latch.next)
            for b in range(latch.width):
                trans = mgr.and_(trans, mgr.iff_(nxt_vars[name][b], fn[b]))
        # Property over current state + inputs.
        pword = lower.word(prop.expr)[0]
        bad = mgr.not_(pword) if prop.kind == "invariant" else pword
        # Initial states.
        init = TRUE
        for name, latch in design.latches.items():
            if latch.init is None:
                continue
            for b in range(latch.width):
                bit = current[name][b]
                lit = bit if (latch.init >> b) & 1 else mgr.not_(bit)
                init = mgr.and_(init, lit)

        reached = init
        frontier = init
        iterations = 0
        while frontier != FALSE:
            # Bad state in the frontier?  (bad may involve inputs: check
            # satisfiability of frontier ∧ bad)
            if mgr.and_(frontier, bad) != FALSE:
                return BddReachResult(
                    status="cex", property_name=property_name,
                    iterations=iterations, cex_depth=iterations,
                    peak_nodes=mgr.num_nodes,
                    wall_time_s=time.monotonic() - t0)
            if iterations >= max_iterations:
                return BddReachResult(
                    status="bounded", property_name=property_name,
                    iterations=iterations, peak_nodes=mgr.num_nodes,
                    wall_time_s=time.monotonic() - t0)
            image = mgr.exists(mgr.and_(frontier, trans),
                               current_var_ids | input_var_ids)
            image = mgr.rename(image, rename_next_to_current)
            frontier = mgr.and_(image, mgr.not_(reached))
            reached = mgr.or_(reached, image)
            iterations += 1
        states = mgr.count_sat(reached, mgr.num_vars)
        # reached is over current vars only; scale away next+input vars.
        states >>= len(latch_bits) + sum(
            i.width for i in design.inputs.values())
        return BddReachResult(
            status="proof", property_name=property_name,
            iterations=iterations, reachable_states=states,
            peak_nodes=mgr.num_nodes, wall_time_s=time.monotonic() - t0)
    except BddLimitExceeded:
        return BddReachResult(
            status="limit", property_name=property_name,
            iterations=0, peak_nodes=mgr.num_nodes,
            wall_time_s=time.monotonic() - t0)
