"""BDD-based symbolic model checking (substrate S11).

The paper's verification platform "includes standard verification
techniques for SAT-based BMC and BDD-based model checking", and the
Industry Design II study reports the BDD engine failing to build the
transition relation of memory-laden models while succeeding on the
PBA-reduced ones.  This package provides that engine: a classic
reduced-ordered BDD manager (unique table + computed table, no
complement edges) and a forward-reachability invariant checker over
memory-free designs.

Memories must be expanded (:func:`repro.design.expand_memories`) or
abstracted away first — which is exactly the paper's point: the explicit
model blows past any node limit, the reduced model verifies instantly.
"""

from repro.bdd.manager import BddLimitExceeded, BddManager
from repro.bdd.reach import BddReachResult, bdd_model_check

__all__ = ["BddManager", "BddLimitExceeded", "bdd_model_check",
           "BddReachResult"]
