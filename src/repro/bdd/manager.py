"""A reduced-ordered BDD manager.

Classic implementation: nodes are integers, terminals 0 and 1, a unique
table guarantees canonicity, ``ite`` with a computed table implements all
boolean connectives, and existential quantification / variable renaming
support image computation.  A configurable node limit turns state-space
blowup into a catchable :class:`BddLimitExceeded` instead of an OOM —
the behaviour the paper reports for its BDD engine on memory-laden
models.
"""

from __future__ import annotations

from typing import Iterable, Optional

FALSE = 0
TRUE = 1


class BddLimitExceeded(Exception):
    """Raised when the manager's node limit is exhausted."""


class BddManager:
    """ROBDD manager with a fixed variable order (creation order)."""

    def __init__(self, node_limit: Optional[int] = None) -> None:
        # Node storage: index -> (var, low, high); 0/1 are terminals.
        self._var: list[int] = [2**30, 2**30]  # terminals sort last
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._quant_cache: dict = {}
        self._rename_cache: dict = {}
        self.num_vars = 0
        self.node_limit = node_limit

    # -- construction -----------------------------------------------------

    def new_var(self) -> int:
        """Create the next variable; returns the BDD for that variable."""
        var = self.num_vars
        self.num_vars += 1
        return self._mk(var, FALSE, TRUE)

    def var_bdd(self, var: int) -> int:
        if not 0 <= var < self.num_vars:
            raise ValueError(f"unknown variable {var}")
        return self._mk(var, FALSE, TRUE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        hit = self._unique.get(key)
        if hit is not None:
            return hit
        if self.node_limit is not None and len(self._var) >= self.node_limit:
            raise BddLimitExceeded(
                f"BDD node limit {self.node_limit} exceeded")
        idx = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = idx
        return idx

    # -- core operations -----------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: ``f ? g : h``, the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        hit = self._ite_cache.get(key)
        if hit is not None:
            return hit
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        out = self._mk(top, low, high)
        self._ite_cache[key] = out
        return out

    def _cofactors(self, f: int, var: int) -> tuple[int, int]:
        if self._var[f] != var:
            return f, f
        return self._low[f], self._high[f]

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def iff_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def and_many(self, fs: Iterable[int]) -> int:
        out = TRUE
        for f in fs:
            out = self.and_(out, f)
            if out == FALSE:
                return FALSE
        return out

    def or_many(self, fs: Iterable[int]) -> int:
        out = FALSE
        for f in fs:
            out = self.or_(out, f)
            if out == TRUE:
                return TRUE
        return out

    # -- quantification and renaming ----------------------------------------

    def exists(self, f: int, vars_set: frozenset[int]) -> int:
        """Existentially quantify the given variables out of ``f``."""
        if f <= TRUE:
            return f
        key = (f, vars_set)
        hit = self._quant_cache.get(key)
        if hit is not None:
            return hit
        var = self._var[f]
        if all(v < var for v in vars_set):
            return f  # below all quantified vars: untouched
        low = self.exists(self._low[f], vars_set)
        high = self.exists(self._high[f], vars_set)
        if var in vars_set:
            out = self.or_(low, high)
        else:
            out = self._mk(var, low, high)
        self._quant_cache[key] = out
        return out

    def rename(self, f: int, mapping: dict[int, int]) -> int:
        """Rename variables; the mapping must preserve relative order."""
        items = sorted(mapping.items())
        for (a1, b1), (a2, b2) in zip(items, items[1:]):
            if not (a1 < a2 and b1 < b2):
                raise ValueError("rename mapping must be order-preserving")
        frozen = tuple(items)
        return self._rename_rec(f, dict(mapping), frozen)

    def _rename_rec(self, f: int, mapping: dict[int, int], frozen) -> int:
        if f <= TRUE:
            return f
        key = (f, frozen)
        hit = self._rename_cache.get(key)
        if hit is not None:
            return hit
        var = self._var[f]
        low = self._rename_rec(self._low[f], mapping, frozen)
        high = self._rename_rec(self._high[f], mapping, frozen)
        out = self._mk(mapping.get(var, var), low, high)
        self._rename_cache[key] = out
        return out

    # -- inspection ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def size(self, f: int) -> int:
        """Nodes in the sub-DAG rooted at ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n <= TRUE or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def count_sat(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables.

        Skipped decision levels are weighted by powers of two, so the
        count is exact even though reduced BDDs elide don't-care nodes.
        """
        if num_vars is None:
            num_vars = self.num_vars
        memo: dict[int, tuple[int, int]] = {}

        def count(n: int) -> tuple[int, int]:
            """Returns (count over vars >= var(n), var(n))."""
            if n == FALSE:
                return 0, num_vars
            if n == TRUE:
                return 1, num_vars
            if n in memo:
                return memo[n]
            lc, lv = count(self._low[n])
            hc, hv = count(self._high[n])
            var = self._var[n]
            total = (lc << (lv - var - 1)) + (hc << (hv - var - 1))
            memo[n] = (total, var)
            return memo[n]

        c, v = count(f)
        return c << v

    def eval(self, f: int, assignment: dict[int, bool]) -> bool:
        """Evaluate under a full/partial assignment (missing vars = False)."""
        n = f
        while n > TRUE:
            if assignment.get(self._var[n], False):
                n = self._high[n]
            else:
                n = self._low[n]
        return n == TRUE
