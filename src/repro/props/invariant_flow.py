"""Invariant-aided memory abstraction (the Industry Design II flow).

Steps, mirroring Section 5 of the paper:

1. ``free_memory_reads`` — the naive abstraction: drop a memory and let
   its read data float (this is what produces spurious witnesses).
2. Verify a candidate memory-interface invariant such as
   ``G(WE = 0 or WD = 0)`` with BMC-3 (backward induction finds it fast).
3. ``abstract_memory_reads`` — replace every read of the memory by the
   value the invariant implies (for a zero-initialised memory whose
   writes are provably zero, reads always return 0).
4. Verify the original properties on the reduced, memory-free design —
   PBA and forward induction now succeed in well under a second.

``prove_with_memory_invariant`` packages steps 2-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bmc.engine import BmcOptions, verify, verify_many
from repro.bmc.results import PROOF, BmcResult
from repro.design.netlist import Design
from repro.design.rewrite import ExprRewriter


def _clone_without_memory(design: Design, mem_name: str,
                          suffix: str) -> tuple[Design, ExprRewriter]:
    if mem_name not in design.memories:
        raise KeyError(f"no memory named {mem_name!r}")
    out = Design(f"{design.name}__{suffix}")
    for inp in design.inputs.values():
        out.input(inp.name, inp.width)
    for latch in design.latches.values():
        out.latch(latch.name, latch.width, latch.init)
    rw = ExprRewriter(design, out)
    return out, rw


def _finish_clone(design: Design, out: Design, rw: ExprRewriter,
                  mem_name: str) -> Design:
    # Keep all other memories intact.
    for mem in design.memories.values():
        if mem.name == mem_name:
            continue
        clone = out.memory(mem.name, mem.addr_width, mem.data_width,
                           mem.num_read_ports, mem.num_write_ports, mem.init)
        for port in mem.read_ports:
            rw.memread_map[(mem.name, port.index)] = clone.read(port.index).data
    for mem in design.memories.values():
        if mem.name == mem_name:
            continue
        clone = out.memories[mem.name]
        for port in mem.read_ports:
            clone.read(port.index).connect(addr=rw.rewrite(port.addr),
                                           en=rw.rewrite(port.en))
        for port in mem.write_ports:
            clone.write(port.index).connect(addr=rw.rewrite(port.addr),
                                            data=rw.rewrite(port.data),
                                            en=rw.rewrite(port.en))
    for latch in design.latches.values():
        out.latches[latch.name].next = rw.rewrite(latch.next)
    for prop in design.properties.values():
        expr = rw.rewrite(prop.expr)
        if prop.kind == "invariant":
            out.invariant(prop.name, expr)
        else:
            out.reach(prop.name, expr)
    out.validate()
    return out


def abstract_memory_reads(design: Design, mem_name: str,
                          read_value: int = 0) -> Design:
    """Replace a memory by a constant on all its read ports.

    Sound when an invariant guarantees the memory's content always equals
    ``read_value`` at read time (e.g. zero-initialised and only ever
    written with zero).
    """
    out, rw = _clone_without_memory(design, mem_name, f"rd_const{read_value}")
    mem = design.memories[mem_name]
    for port in mem.read_ports:
        rw.memread_map[(mem_name, port.index)] = out.const(read_value,
                                                           mem.data_width)
    return _finish_clone(design, out, rw, mem_name)


def free_memory_reads(design: Design, mem_name: str) -> Design:
    """The naive abstraction: read data becomes a free primary input.

    Over-approximates (reads can return anything), so witnesses found on
    the result may be spurious — the paper's depth-7 experience.
    """
    out, rw = _clone_without_memory(design, mem_name, "rd_free")
    mem = design.memories[mem_name]
    for port in mem.read_ports:
        free = out.input(f"{mem_name}_rd{port.index}_free", mem.data_width)
        rw.memread_map[(mem_name, port.index)] = free
    return _finish_clone(design, out, rw, mem_name)


@dataclass
class InvariantFlowResult:
    """Outcome of the invariant-aided abstraction pipeline."""

    invariant_result: BmcResult
    property_results: dict[str, BmcResult] = field(default_factory=dict)
    reduced_design: Optional[Design] = None

    @property
    def all_proved(self) -> bool:
        return (self.invariant_result.status == PROOF
                and all(r.status == PROOF for r in self.property_results.values()))


def prove_with_memory_invariant(design: Design, mem_name: str,
                                invariant_name: str,
                                property_names: list[str],
                                read_value: int = 0,
                                invariant_options: Optional[BmcOptions] = None,
                                property_options: Optional[BmcOptions] = None,
                                ) -> InvariantFlowResult:
    """Prove properties by first proving a memory-content invariant.

    ``invariant_name`` must be an invariant of ``design`` implying that
    the memory's reads always return ``read_value``; it is verified with
    BMC-3, the memory is replaced by the constant, and each property is
    verified on the reduced design.
    """
    inv_res = verify(design, invariant_name,
                     invariant_options or BmcOptions(max_depth=20))
    result = InvariantFlowResult(invariant_result=inv_res)
    if inv_res.status != PROOF:
        return result
    reduced = abstract_memory_reads(design, mem_name, read_value)
    result.reduced_design = reduced
    opts = property_options or BmcOptions(max_depth=30, use_emm=True)
    # All derived properties are checks over the same reduced design and
    # options, so they share one encoding session: the unrolled CNF is
    # paid for once and each further property adds only its P literals.
    result.property_results = verify_many(reduced, property_names, opts)
    return result
