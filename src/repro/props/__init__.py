"""Property-level flows built on top of the BMC engine (S8).

:mod:`repro.props.invariant_flow` reproduces the Industry Design II
methodology: discover an invariant about the memory interface, prove it
by induction, then *replace the memory* by the constraint the invariant
implies on the read data and prove the original properties on the
reduced, memory-free model.
"""

from repro.props.invariant_flow import (abstract_memory_reads,
                                        free_memory_reads,
                                        prove_with_memory_invariant,
                                        InvariantFlowResult)

__all__ = ["abstract_memory_reads", "free_memory_reads",
           "prove_with_memory_invariant", "InvariantFlowResult"]
