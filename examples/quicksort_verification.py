#!/usr/bin/env python3
"""The paper's quicksort case study, end to end (Tables 1 and 2).

* simulates the quicksort FSM on a concrete array,
* proves P1 (sortedness of the first two elements) and P2 (stack
  discipline) by forward induction with EMM — Table 1's EMM columns,
* runs EMM + proof-based abstraction on P2 and shows the array memory
  module being abstracted away entirely — Table 2's headline result.

Run:  python examples/quicksort_verification.py [N]
"""

import sys
import time

from repro.bmc import bmc3, verify
from repro.casestudies.quicksort import (HALT, QuicksortParams,
                                         build_quicksort)
from repro.pba import verify_with_pba
from repro.sim import Simulator


def simulate(params: QuicksortParams, values) -> None:
    design = build_quicksort(params)
    sim = Simulator(design, init_memories={
        "arr": {i: v for i, v in enumerate(values)}})
    cycles = 0
    while sim.latches["pc"] != HALT:
        sim.step({})
        cycles += 1
    result = [sim.memories["arr"].get(i, 0) for i in range(params.n)]
    print(f"  sorted {values} -> {result} in {cycles} cycles")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    params = QuicksortParams(n=n, addr_width=3, data_width=3,
                             stack_addr_width=max(3, (2 * n).bit_length()))
    print(f"quicksort case study, N={n} "
          f"(AW={params.addr_width}, DW={params.data_width})")

    print("simulation sanity check:")
    simulate(params, list(range(n, 0, -1)))

    print("EMM induction proofs (BMC-3), arbitrary initial array:")
    for prop in ("P1", "P2"):
        t0 = time.perf_counter()
        result = verify(build_quicksort(params), prop,
                        bmc3(max_depth=120, pba=False))
        print(f"  {result.describe()}  [{time.perf_counter() - t0:.1f}s]")

    print("EMM + PBA on P2 (the Table 2 experiment):")
    t0 = time.perf_counter()
    # Raw unsat cores are sufficient but not minimal, so the stable set
    # may incidentally keep an array control latch; deletion-based
    # minimization recovers the paper's clean module drop-out.
    outcome = verify_with_pba(build_quicksort(params), "P2",
                              stability_depth=5, abstraction_max_depth=40,
                              proof_max_depth=120, minimize="memory")
    phase = outcome.phase
    print(f"  latch reasons stable at depth {phase.stable_depth}: "
          f"{phase.kept_latch_bits}/{phase.orig_latch_bits} latch bits kept")
    print(f"  abstracted memories: {sorted(phase.abstracted_memories)} "
          f"(the array drops out, as in the paper)")
    print(f"  kept memories: {sorted(phase.kept_memories)}")
    if outcome.proof_result is not None:
        print(f"  {outcome.proof_result.describe()}")
    print(f"  total {time.perf_counter() - t0:.1f}s, overall: {outcome.status}")
    assert "arr" in phase.abstracted_memories


if __name__ == "__main__":
    main()
