#!/usr/bin/env python3
"""Verify software on a CPU with embedded memories — end to end.

The DATE'05 paper's quicksort case study verifies a *program* through
the memory system it runs on.  This example does the same with the
bundled accumulator CPU:

1. assemble a memcpy-with-self-check program into the instruction ROM
   (an embedded memory seeded through ``init_words``),
2. simulate it on a concrete memory image,
3. find the BMC witness that the program halts,
4. prove ``G(halted -> acc = 1)`` — the self-check passes for EVERY
   initial data-memory image — by SAT-based induction with EMM's
   precise arbitrary-initial-state modeling (Section 4.2),
5. show the proof FAIL when the equation-(6) consistency constraints
   are ablated: two reads of the same unwritten address may then
   disagree, so the over-approximate model "finds" a mismatch.

Run:  python examples/cpu_software_proof.py
"""

import time

from repro.bmc import BmcOptions, bmc3, verify
from repro.casestudies.cpu import CpuParams, build_cpu, memcpy_program
from repro.sim import Simulator

PARAMS = CpuParams(pc_width=5, addr_width=3, data_width=4)
N = 2  # words copied (and re-checked) by the program


def main() -> None:
    program = memcpy_program(N, src=0, dst=4, params=PARAMS)
    design = build_cpu(program, PARAMS)
    print(f"program: {len(program)} instructions; "
          f"design: {design.num_latch_bits()} latch bits, "
          f"{design.num_memory_bits()} memory bits in "
          f"{len(design.memories)} memories")

    print("\n-- 1. simulate on a concrete image --")
    sim = Simulator(design, init_memories={"dmem": {0: 9, 1: 3}})
    while not sim.latches["halted"]:
        sim.step({})
    print(f"   halted after {sim.cycle} cycles; acc={sim.latches['acc']} "
          f"(1 = self-check passed); dmem={dict(sorted(sim.memories['dmem'].items()))}")

    print("\n-- 2. witness that the program halts (BMC-2 falsification mode) --")
    r = verify(design, "halts", BmcOptions(find_proof=False, max_depth=20))
    print(f"   {r.describe()}  (trace validated on simulator: "
          f"{r.trace_validated})")

    print("\n-- 3. prove the self-check for ALL initial memories (BMC-3) --")
    t0 = time.monotonic()
    r = verify(design, "halted_acc_one", bmc3(max_depth=30, pba=False))
    print(f"   {r.describe()}  [{time.monotonic() - t0:.1f}s]")
    assert r.proved

    print("\n-- 4. ablation: drop equation (6), the proof must fail --")
    r = verify(design, "halted_acc_one",
               bmc3(max_depth=30, pba=False, init_consistency=False))
    print(f"   without init-consistency: {r.status} "
          "(the spurious model lets two reads of one address differ)")
    assert not r.proved


if __name__ == "__main__":
    main()
