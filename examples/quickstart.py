#!/usr/bin/env python3
"""Quickstart: verify a memory-backed FIFO with EMM-based BMC.

Builds the FIFO design, then:

1. proves two control invariants by induction (BMC-3),
2. finds a witness that the FIFO can fill up,
3. checks data integrity (a pop returns the pushed value) to a bound,
4. shows the explicit-memory baseline reaching the same verdicts, slower.

Run:  python examples/quickstart.py
"""

import time

from repro.bmc import bmc1, bmc2, bmc3, verify
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.design import expand_memories


def main() -> None:
    params = FifoParams(addr_width=3, data_width=8)
    design = build_fifo(params)
    print(f"design: {design.name}  "
          f"(latch bits={design.num_latch_bits()}, "
          f"memory bits={design.num_memory_bits()})")

    print("\n-- EMM (the paper's approach) --")
    for prop, opts in [
        ("count_bounded", bmc3(max_depth=15, pba=False)),
        ("empty_full_exclusive", bmc3(max_depth=15, pba=False)),
        ("can_fill", bmc2(max_depth=12)),
        ("data_integrity", bmc2(max_depth=10)),
    ]:
        t0 = time.perf_counter()
        result = verify(design, prop, opts)
        print(f"  {result.describe()}  [{time.perf_counter() - t0:.2f}s]")
        if prop == "can_fill" and result.trace is not None:
            print("  witness inputs per cycle:")
            for k, cyc in enumerate(result.trace.cycles):
                print(f"    cycle {k}: {cyc['inputs']}")

    print("\n-- Explicit modeling (the baseline) --")
    explicit = expand_memories(build_fifo(params))
    print(f"  explicit model now has {explicit.num_latch_bits()} latch bits")
    for prop in ("count_bounded", "can_fill"):
        t0 = time.perf_counter()
        result = verify(explicit, prop,
                        bmc1(max_depth=15, pba=False))
        print(f"  {result.describe()}  [{time.perf_counter() - t0:.2f}s]")


if __name__ == "__main__":
    main()
