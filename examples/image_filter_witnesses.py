#!/usr/bin/env python3
"""Industry Design I analog: witness generation over a property family.

Mirrors the paper's first industrial case study: a low-pass image filter
with two embedded memories and a family of reachability properties — most
have witnesses (the paper found 206/216, max depth 51), a few are
unreachable and proved by induction (the paper's remaining 10).

Every witness is replayed on the reference simulator, and one is dumped
as a VCD waveform next to this script.

Run:  python examples/image_filter_witnesses.py
"""

import pathlib
import time

from repro.bmc import bmc2, bmc3, verify
from repro.casestudies.image_filter import (ImageFilterParams,
                                            build_image_filter)
from repro.sim import write_vcd


def main() -> None:
    params = ImageFilterParams(addr_width=3, data_width=8)
    design = build_image_filter(params)
    print(f"design: {design.name}, line width {params.line_width}, "
          f"max filtered value {params.max_filtered}")

    witnesses = 0
    proofs = 0
    t0 = time.perf_counter()
    vcd_written = False
    for name, prop in sorted(design.properties.items()):
        if name.startswith("unreach"):
            result = verify(design, name, bmc3(max_depth=20, pba=False))
        else:
            result = verify(design, name, bmc2(max_depth=30))
        print(f"  {result.describe()}")
        if result.falsified:
            witnesses += 1
            assert result.trace_validated, "witness must replay on the simulator"
            if not vcd_written and name.startswith("reach_out"):
                out = pathlib.Path(__file__).with_name("image_filter_witness.vcd")
                with out.open("w") as fh:
                    write_vcd(fh, result.trace, {
                        ("inputs", "pix_in"): params.data_width,
                        ("latches", "pc"): 2,
                        ("latches", "k"): params.addr_width,
                        ("latches", "out_val"): params.data_width,
                        ("latches", "out_valid"): 1,
                    })
                print(f"    -> waveform written to {out.name}")
                vcd_written = True
        elif result.proved:
            proofs += 1

    total = len(design.properties)
    print(f"\n{witnesses}/{total} witnesses found, {proofs} unreachability "
          f"proofs (paper: 206/216 witnesses, 10 proofs), "
          f"{time.perf_counter() - t0:.1f}s total")


if __name__ == "__main__":
    main()
