#!/usr/bin/env python3
"""Industry Design II analog: the invariant-aided abstraction flow.

Reproduces the paper's second industrial case study step by step:

1. naively abstracting the multiport memory produces *spurious*
   witnesses (the paper saw them at depth 7);
2. with EMM, no witness exists within the bound;
3. the memory-interface invariant ``G(WE=0 or WD=0)`` is proved by
   backward induction at depth <= 2;
4. the invariant implies all reads return 0, so the memory is replaced
   by that constant and every alarm property is proved unreachable by
   induction on the reduced, memory-free model.

Run:  python examples/invariant_discovery.py
"""

import time

from repro.bmc import BmcOptions, bmc2, bmc3, verify
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.props import free_memory_reads, prove_with_memory_invariant


def main() -> None:
    params = MultiportSocParams(addr_width=4, data_width=8,
                                counter_width=4, num_properties=8)
    design = build_multiport_soc(params)
    mem = design.memories["table"]
    print(f"design: {design.name}, memory AW={mem.addr_width} "
          f"DW={mem.data_width} {mem.num_read_ports}R/{mem.num_write_ports}W")
    alarms = sorted(n for n in design.properties if n.startswith("alarm_"))

    print("\nstep 1 — naive abstraction (read data floats):")
    freed = free_memory_reads(design, "table")
    r = verify(freed, alarms[0], BmcOptions(find_proof=False, max_depth=10))
    print(f"  {r.describe()}   <- SPURIOUS (the paper saw these at depth 7)")

    print("\nstep 2 — EMM keeps the memory semantics:")
    r = verify(design, alarms[0], bmc2(max_depth=12))
    print(f"  {r.describe()}   <- no witness, but also no proof")

    print("\nstep 3 — prove the interface invariant G(WE=0 or WD=0):")
    t0 = time.perf_counter()
    r = verify(design, "we_or_wd_zero", bmc3(max_depth=10, pba=False))
    print(f"  {r.describe()}  [{time.perf_counter() - t0:.2f}s]")

    print("\nstep 4 — replace the memory by rd=0 and prove every alarm:")
    t0 = time.perf_counter()
    flow = prove_with_memory_invariant(
        design, "table", invariant_name="we_or_wd_zero",
        property_names=alarms,
        invariant_options=BmcOptions(max_depth=10),
        property_options=BmcOptions(max_depth=15))
    for name in alarms:
        print(f"  {flow.property_results[name].describe()}")
    verdict = "ALL PROVED" if flow.all_proved else "INCOMPLETE"
    print(f"\n{verdict} in {time.perf_counter() - t0:.2f}s "
          f"(paper: each property < 1s on the reduced model)")


if __name__ == "__main__":
    main()
