#!/usr/bin/env python3
"""BDD-based model checking vs SAT-based BMC — the platform's two legs.

The paper's verification platform "includes standard verification
techniques for SAT-based BMC and BDD-based model checking"; Industry
Design II shows the BDD engine drowning on memory-laden models while
EMM-based BMC keeps going.  This example demonstrates both outcomes:

1. on a small memory-free control design both engines agree (BDD even
   reports the exact reachable state count);
2. on a design with an embedded memory, the explicit expansion blows the
   BDD node budget while EMM-based BMC proves the property comfortably;
3. a data-race check rounds out the tooling tour (the paper assumes
   races are absent — here is how to discharge that assumption).

Run:  python examples/bdd_vs_bmc.py
"""

from repro.bdd import bdd_model_check
from repro.bmc import bmc3, verify
from repro.casestudies.cache import CacheParams, build_cache
from repro.design import Design, expand_memories
from repro.emm import find_data_race


def control_design() -> Design:
    d = Design("traffic")
    tick = d.input("tick", 1)
    phase = d.latch("phase", 2, init=0)
    # 0 -> 1 -> 2 -> 0 (state 3 unreachable)
    phase.next = tick.ite(
        phase.expr.eq(2).ite(d.const(0, 2), phase.expr + 1), phase.expr)
    d.invariant("no_phase3", phase.expr.ne(3))
    return d


def main() -> None:
    print("1) memory-free control design:")
    d = control_design()
    r_bdd = bdd_model_check(d, "no_phase3")
    print(f"   BDD : {r_bdd.describe()}")
    r_bmc = verify(control_design(), "no_phase3", bmc3(max_depth=10, pba=False))
    print(f"   BMC : {r_bmc.describe()}")
    assert r_bdd.proved and r_bmc.proved

    print("\n2) embedded-memory design (cache controller):")
    cache = build_cache(CacheParams(index_width=2, tag_width=3, data_width=8))
    explicit = expand_memories(build_cache(
        CacheParams(index_width=2, tag_width=3, data_width=8)))
    r_bdd = bdd_model_check(explicit, "read_after_fill", node_limit=50_000)
    print(f"   BDD on explicit model : {r_bdd.describe()}")
    r_bmc = verify(cache, "read_after_fill", bmc3(max_depth=10, pba=False))
    print(f"   EMM-based BMC         : {r_bmc.describe()}")
    assert r_bdd.status == "limit" and r_bmc.proved

    print("\n3) data-race check on the cache's memories:")
    for mem in ("tags", "data"):
        result = find_data_race(build_cache(), mem, max_depth=6)
        print(f"   {result.describe()}")


if __name__ == "__main__":
    main()
