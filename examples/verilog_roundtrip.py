#!/usr/bin/env python3
"""Verilog roundtrip: export a design, re-import it, prove both equal.

The paper's case studies were written in Verilog HDL.  This example
shows the platform's two HDL ends working together:

1. build the quicksort design (two embedded memories) in the Python IR,
2. write it out as synthesizable Verilog (``write_verilog``),
3. parse that text back into a fresh design (``parse_verilog``),
4. build a *miter* of the two and run bounded equivalence checking —
   with the original's arbitrary-init array declared to hold the same
   unknown contents in both copies (equation (6) extended across the
   miter, ``share_arbitrary_init=True``).

Run:  python examples/verilog_roundtrip.py
"""

import io
import time

from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.design import check_equivalence, parse_verilog, write_verilog

PARAMS = QuicksortParams(n=2, addr_width=3, data_width=3, stack_addr_width=3)
DEPTH = 12


def main() -> None:
    design = build_quicksort(PARAMS)
    buf = io.StringIO()
    write_verilog(buf, design)
    text = buf.getvalue()
    print(f"exported {design.name!r}: {len(text.splitlines())} lines of "
          f"Verilog, {len(design.memories)} memories")
    print("\n".join(text.splitlines()[:12]))
    print("  ...")

    parsed = parse_verilog(text)
    print(f"\nre-imported: {len(parsed.latches)} latches, "
          f"{len(parsed.memories)} memories, "
          f"properties {sorted(parsed.properties)}")

    outputs = [
        (design.latches["pc"].expr, parsed.latches["pc"].expr),
        (design.latches["sp"].expr, parsed.latches["sp"].expr),
        (design.latches["pair_ok"].expr, parsed.latches["pair_ok"].expr),
    ]
    print(f"\nchecking lock-step equality of pc/sp/pair_ok to depth {DEPTH} "
          "(shared arbitrary initial memories) ...")
    t0 = time.monotonic()
    r = check_equivalence(design, parsed, outputs, max_depth=DEPTH,
                          share_arbitrary_init=True)
    print(f"  {r.status} after {r.depth} frames "
          f"[{time.monotonic() - t0:.1f}s] — the roundtrip preserves "
          "behaviour" if r.status == "bounded" else f"  DIVERGED: {r.describe()}")
    assert r.status == "bounded"


if __name__ == "__main__":
    main()
