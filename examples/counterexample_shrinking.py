#!/usr/bin/env python3
"""Counterexample minimization: from SAT-model noise to a crisp repro.

BMC counterexamples carry arbitrary solver-chosen values.  This example
plants a bug in a memory-backed design, extracts the raw BMC trace, and
shrinks it with the simulator-driven minimizer:

* noise inputs drop to zero,
* irrelevant initial memory locations disappear,
* surviving values shrink toward the smallest failing magnitude.

Run:  python examples/counterexample_shrinking.py
"""

from repro.bmc import BmcOptions, shrink_trace, verify
from repro.design import Design


def buggy_design() -> Design:
    """An accumulator that overflows its alarm threshold on value 12."""
    d = Design("alarm")
    value = d.input("value", 8)
    noise = d.input("noise", 8)          # sampled but never used meaningfully
    log = d.memory("log", addr_width=3, data_width=8, init=None)
    wptr = d.latch("wptr", 3, init=0)
    wptr.next = wptr.expr + 1
    log.write(0).connect(addr=wptr.expr, data=value, en=1)
    rd = log.read(0).connect(addr=wptr.expr - 2, en=1)
    shadow = d.latch("shadow", 8, init=0)
    shadow.next = noise  # red herring state
    alarm = d.latch("alarm", 1, init=0)
    alarm.next = alarm.expr | rd.uge(12)
    d.invariant("no_alarm", alarm.expr.eq(0))
    return d


def main() -> None:
    design = buggy_design()
    r = verify(design, "no_alarm", BmcOptions(find_proof=False, max_depth=12))
    assert r.status == "cex"
    print(f"raw counterexample at depth {r.depth} "
          f"(simulator-validated: {r.trace_validated}):")
    print(r.trace.format_table([("inputs", "value"), ("inputs", "noise"),
                                ("latches", "wptr"), ("latches", "alarm")]))
    print(f"raw initial memory image: {r.trace.init_memories}")

    res = shrink_trace(design, "no_alarm", r.trace)
    print(f"\nshrunk: {res.applied}/{res.attempted} simplifications held, "
          f"failure now at cycle {res.failure_cycle}:")
    print(res.trace.format_table([("inputs", "value"), ("inputs", "noise"),
                                  ("latches", "wptr"), ("latches", "alarm")]))
    print(f"shrunk initial memory image: {res.trace.init_memories}")
    print("\nshrink log:")
    for line in res.log[:12]:
        print(f"  {line}")
    if len(res.log) > 12:
        print(f"  ... ({len(res.log) - 12} more)")


if __name__ == "__main__":
    main()
